module Instr = Repro_isa.Instr

type t = { mode : Config.fpu_mode; fp_short : int }

let worst_case_fdiv = 25
let worst_case_fsqrt = 29

let create ~mode ~latencies = { mode; fp_short = latencies.Config.fp_short }

let mantissa_bits v = Int64.to_int (Int64.logand (Int64.bits_of_float v) 0xFFFFFFFFFFFFFL)

(* Trailing zero count of the 52-bit mantissa, capped; more trailing zeros
   means an SRT iteration can terminate earlier. *)
let trailing_zeros m =
  if m = 0 then 52
  else begin
    let rec go m acc = if m land 1 = 1 then acc else go (m lsr 1) (acc + 1) in
    go m 0
  end

let fdiv_latency x y =
  let fy = Float.abs y in
  if fy = 0. || Float.is_nan y || Float.is_nan x then worst_case_fdiv
  else if mantissa_bits y = 0 then 8 (* divisor is a power of two: shift path *)
  else begin
    let credit = Stdlib.min 8 (trailing_zeros (mantissa_bits y) / 4) in
    let extra = (mantissa_bits x lxor mantissa_bits y) land 3 in
    17 + (4 - (credit / 2)) + extra
  end

let fsqrt_latency x =
  if x < 0. || Float.is_nan x then worst_case_fsqrt
  else if x = 0. || x = 1. then 6 (* trivial results short-circuit *)
  else begin
    let credit = Stdlib.min 6 (trailing_zeros (mantissa_bits x) / 5) in
    let extra = mantissa_bits x land 3 in
    20 + (5 - credit) + extra
  end

let latency t op ~x ~y =
  match (op, t.mode) with
  | (Instr.Fadd_op | Instr.Fmul_op), _ -> t.fp_short
  | Instr.Fdiv_op, Config.Worst_case_fixed -> worst_case_fdiv
  | Instr.Fsqrt_op, Config.Worst_case_fixed -> worst_case_fsqrt
  | Instr.Fdiv_op, Config.Value_dependent -> fdiv_latency x y
  | Instr.Fsqrt_op, Config.Value_dependent -> fsqrt_latency x
