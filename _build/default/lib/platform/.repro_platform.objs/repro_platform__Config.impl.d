lib/platform/config.ml:
