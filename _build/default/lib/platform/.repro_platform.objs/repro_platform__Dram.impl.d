lib/platform/dram.ml: Array Config
