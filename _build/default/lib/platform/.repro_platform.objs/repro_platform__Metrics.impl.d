lib/platform/metrics.ml: Format
