lib/platform/config.mli:
