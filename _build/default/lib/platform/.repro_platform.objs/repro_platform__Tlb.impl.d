lib/platform/tlb.ml: Array Config Repro_rng
