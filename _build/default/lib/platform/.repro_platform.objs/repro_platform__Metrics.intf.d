lib/platform/metrics.mli: Format
