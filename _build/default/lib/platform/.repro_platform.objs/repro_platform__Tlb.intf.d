lib/platform/tlb.mli: Config Repro_rng
