lib/platform/cache.mli: Config Repro_rng
