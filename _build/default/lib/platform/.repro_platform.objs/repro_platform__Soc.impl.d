lib/platform/soc.ml: Core_sim List
