lib/platform/dram.mli: Config
