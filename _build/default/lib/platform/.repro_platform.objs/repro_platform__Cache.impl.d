lib/platform/cache.ml: Array Config Int64 Repro_rng
