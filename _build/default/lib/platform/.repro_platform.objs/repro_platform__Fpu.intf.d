lib/platform/fpu.mli: Config Repro_isa
