lib/platform/core_sim.mli: Config Metrics Repro_isa
