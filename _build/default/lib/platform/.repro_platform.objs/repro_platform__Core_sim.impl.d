lib/platform/core_sim.ml: Bus Cache Config Dram Fpu Metrics Repro_isa Repro_rng Tlb
