lib/platform/fpu.ml: Config Float Int64 Repro_isa Stdlib
