lib/platform/bus.ml: Array Config List Repro_rng
