lib/platform/bus.mli: Config Repro_rng
