lib/platform/soc.mli: Config Core_sim Metrics Repro_isa
