(** Block-maxima extraction, the sampling scheme behind the GEV/Gumbel fit
    of the MBPTA process (Cucu-Grosjean et al., ECRTS 2012): the run series
    is cut into consecutive blocks of [block_size] and only each block's
    maximum is kept. *)

(** [extract ~block_size xs] — incomplete trailing blocks are dropped.
    Raises [Invalid_argument] if fewer than one full block is available. *)
val extract : block_size:int -> float array -> float array

(** [suggest_block_size n] — a pragmatic default: the largest power of two
    that still leaves at least 30 block maxima, clamped to [[1, 64]].  30 is
    the usual minimum sample size for a stable tail fit. *)
val suggest_block_size : int -> int
