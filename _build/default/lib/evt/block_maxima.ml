let extract ~block_size xs =
  if block_size < 1 then invalid_arg "Block_maxima.extract: block_size < 1";
  let n = Array.length xs in
  let blocks = n / block_size in
  if blocks < 1 then invalid_arg "Block_maxima.extract: sample smaller than one block";
  Array.init blocks (fun b ->
      let start = b * block_size in
      let rec max_in i acc =
        if i >= block_size then acc else max_in (i + 1) (Float.max acc xs.(start + i))
      in
      max_in 1 xs.(start))

let suggest_block_size n =
  let rec grow candidate =
    let next = candidate * 2 in
    if next <= 64 && n / next >= 30 then grow next else candidate
  in
  if n < 30 then 1 else grow 1
