(** Generalized-extreme-value parameter estimation.

    [Pwm] implements Hosking, Wallis & Wood (1985): shape from the PWM ratio,
    then scale and location in closed form.  [Mle] refines the PWM estimate
    with Nelder-Mead on the (mu, log sigma, xi) parameterization. *)

type method_ = Pwm | Mle

val fit : ?method_:method_ -> float array -> Repro_stats.Distribution.Gev.t

val goodness_of_fit :
  Repro_stats.Distribution.Gev.t -> float array -> Repro_stats.Ks.result

(** Likelihood-ratio test of H0: xi = 0 (Gumbel) inside the GEV family.
    Returns [(lr_statistic, p_value)]; under H0 the statistic is chi-square
    with 1 degree of freedom.  MBPTA commonly selects the Gumbel model when
    this test does not reject it. *)
val gumbel_lr_test : float array -> float * float
