(** Bootstrap confidence intervals on pWCET estimates.

    A point pWCET at 1e-15 extrapolates ten orders of magnitude past the
    data; reporting it without a sampling-uncertainty band invites
    over-trust.  This module resamples the measurement set with
    replacement, refits the tail each time, and returns percentile
    intervals of the pWCET quantile — the standard nonparametric bootstrap
    applied at the level of whole runs, so block re-formation is part of
    the resampling. *)

type interval = {
  lower : float;
  point : float;  (** estimate on the original sample *)
  upper : float;
  confidence : float;
  replicates : int;
}

(** [pwcet_interval ?replicates ?confidence ~prng ~sample ~cutoff_probability ()]
    — Gumbel tail on block maxima (block size from
    {!Block_maxima.suggest_block_size} of the sample size), [replicates]
    defaults to 200 and [confidence] to 0.95. *)
val pwcet_interval :
  ?replicates:int ->
  ?confidence:float ->
  prng:Repro_rng.Prng.t ->
  sample:float array ->
  cutoff_probability:float ->
  unit ->
  interval

val pp_interval : Format.formatter -> interval -> unit
