(** Gumbel parameter estimation.

    Three estimators of increasing cost:
    - [Moments]: beta = s sqrt(6)/pi, mu = mean - gamma beta;
    - [Pwm]: probability-weighted moments (Landwehr et al.), robust and the
      usual MBPTA default;
    - [Mle]: maximum likelihood, profiling mu out analytically and solving
      for beta with golden-section search. *)

type method_ = Moments | Pwm | Mle

val fit : ?method_:method_ -> float array -> Repro_stats.Distribution.Gumbel.t

(** Goodness of fit of a fitted Gumbel against the sample (one-sample KS). *)
val goodness_of_fit :
  Repro_stats.Distribution.Gumbel.t -> float array -> Repro_stats.Ks.result
