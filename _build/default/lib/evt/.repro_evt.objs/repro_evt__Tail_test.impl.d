lib/evt/tail_test.ml: Array Float Format List Repro_stats
