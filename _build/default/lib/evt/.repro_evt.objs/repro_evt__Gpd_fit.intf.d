lib/evt/gpd_fit.mli: Repro_stats
