lib/evt/gev_fit.ml: Array Float Gumbel_fit Repro_stats
