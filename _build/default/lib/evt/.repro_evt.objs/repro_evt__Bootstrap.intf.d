lib/evt/bootstrap.mli: Format Repro_rng
