lib/evt/block_maxima.mli:
