lib/evt/convergence.ml: Array Block_maxima Float Format Gumbel_fit List Pwcet
