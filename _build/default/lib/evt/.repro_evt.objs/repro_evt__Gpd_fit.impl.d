lib/evt/gpd_fit.ml: Array Float List Repro_stats
