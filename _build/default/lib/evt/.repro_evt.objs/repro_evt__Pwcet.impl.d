lib/evt/pwcet.ml: Float Format Gpd_fit List Repro_stats
