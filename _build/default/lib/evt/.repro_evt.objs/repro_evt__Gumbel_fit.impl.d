lib/evt/gumbel_fit.ml: Array Float Repro_stats
