lib/evt/pwcet.mli: Format Gpd_fit Repro_stats
