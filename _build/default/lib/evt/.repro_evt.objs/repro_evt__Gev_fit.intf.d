lib/evt/gev_fit.mli: Repro_stats
