lib/evt/bootstrap.ml: Array Block_maxima Float Format Gumbel_fit Pwcet Repro_rng Stdlib
