lib/evt/tail_test.mli: Format
