lib/evt/block_maxima.ml: Array Float
