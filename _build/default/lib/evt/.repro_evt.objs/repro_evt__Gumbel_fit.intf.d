lib/evt/gumbel_fit.mli: Repro_stats
