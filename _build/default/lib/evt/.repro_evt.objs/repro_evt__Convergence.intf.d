lib/evt/convergence.mli: Format
