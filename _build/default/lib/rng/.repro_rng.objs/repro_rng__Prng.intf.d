lib/rng/prng.mli: Generator
