lib/rng/lfsr.ml: Int64 Splitmix
