lib/rng/xorshift.ml: Int64 Splitmix
