lib/rng/quality.ml: Array Float Format List Prng Stdlib
