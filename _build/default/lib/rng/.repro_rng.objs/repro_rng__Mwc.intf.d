lib/rng/mwc.mli: Generator
