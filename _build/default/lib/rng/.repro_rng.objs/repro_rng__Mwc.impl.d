lib/rng/mwc.ml: Int64 Splitmix
