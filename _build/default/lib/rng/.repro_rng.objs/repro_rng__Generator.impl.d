lib/rng/generator.ml:
