lib/rng/splitmix.mli:
