lib/rng/pcg.ml: Int64 Splitmix
