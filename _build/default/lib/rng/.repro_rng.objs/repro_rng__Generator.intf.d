lib/rng/generator.mli:
