lib/rng/pcg.mli: Generator
