lib/rng/lfsr.mli: Generator
