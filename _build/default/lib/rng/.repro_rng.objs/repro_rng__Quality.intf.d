lib/rng/quality.mli: Format Prng
