lib/rng/xorshift.mli: Generator
