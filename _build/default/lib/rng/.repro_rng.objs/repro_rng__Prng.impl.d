lib/rng/prng.ml: Array Float Generator Int64 Lfsr Mwc Pcg Stdlib Xorshift
