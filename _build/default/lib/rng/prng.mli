(** A packaged pseudo-random number generator: any {!Generator.S}
    implementation boxed with its state, plus the derived draws every client
    of the library needs (floats, bounded ints, booleans, permutations).

    This is the single randomness entry point for the whole reproduction:
    the time-randomized platform (cache placement/replacement seeds), the
    workload input generator, and the synthetic-data generators used by the
    statistics tests all draw from a [Prng.t]. *)

type t

(** Which generator algorithm backs a [t]. *)
type algorithm = Xorshift128p | Pcg32 | Lfsr64 | Mwc32

(** All the algorithms this library provides. *)
val all_algorithms : algorithm list

val algorithm_name : algorithm -> string

(** [create ?algorithm seed] builds a generator ([Xorshift128p] when
    [algorithm] is omitted).  Equal [(algorithm, seed)] pairs yield equal
    streams. *)
val create : ?algorithm:algorithm -> int64 -> t

(** [of_module (module G) seed] packages an arbitrary generator
    implementation. *)
val of_module : (module Generator.S) -> int64 -> t

val name : t -> string

(** The backing algorithm, or [None] for a generator packaged with
    {!of_module}. *)
val algorithm : t -> algorithm option

(** 32 uniform bits in [[0, 2^32)]. *)
val bits32 : t -> int

(** Uniform float in [[0, 1)], built from 32 bits of entropy. *)
val float : t -> float

(** Uniform float in [(0, 1)] — never returns [0.]; safe for [log]. *)
val float_pos : t -> float

(** [int_below t n] is uniform in [[0, n)]; rejection-sampled so it is exact
    (no modulo bias).  [n] must be in [[1, 2^32]]. *)
val int_below : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [[lo, hi]] inclusive. *)
val int_in_range : t -> lo:int -> hi:int -> int

val bool : t -> bool

(** Standard normal draw (Box-Muller). *)
val gaussian : t -> float

(** Unit-rate exponential draw. *)
val exponential : t -> float

(** [shuffle_in_place t a] applies a Fisher-Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** [split t] derives a fresh, independent generator (same algorithm), for
    handing a private stream to a subcomponent. *)
val split : t -> t

(** [copy t] duplicates the current state: both generators then produce the
    same stream.  Used to replay a run exactly. *)
val copy : t -> t
