type state = { mutable s0 : int64; mutable s1 : int64 }

let name = "xorshift128+"

let create seed =
  let sm = Splitmix.create seed in
  let s0 = Splitmix.next_nonzero sm in
  let s1 = Splitmix.next_nonzero sm in
  { s0; s1 }

let ( ^^ ) = Int64.logxor
let ( <<< ) = Int64.shift_left
let ( >>> ) = Int64.shift_right_logical

let next64 t =
  let x = t.s0 and y = t.s1 in
  let result = Int64.add x y in
  t.s0 <- y;
  let x = x ^^ (x <<< 23) in
  t.s1 <- x ^^ y ^^ (x >>> 17) ^^ (y >>> 26);
  result

(* Upper 32 bits have the best statistical quality for xorshift+. *)
let next32 t = Int64.to_int (Int64.shift_right_logical (next64 t) 32)

let copy t = { s0 = t.s0; s1 = t.s1 }
