type state = { mutable s : int64; inc : int64 }

let name = "pcg32"

let multiplier = 6364136223846793005L

let create seed =
  let sm = Splitmix.create seed in
  let initstate = Splitmix.next sm in
  (* The stream selector must be odd. *)
  let inc = Int64.logor (Splitmix.next sm) 1L in
  let t = { s = 0L; inc } in
  t.s <- Int64.add initstate inc;
  t.s <- Int64.add (Int64.mul t.s multiplier) inc;
  t

let copy t = { s = t.s; inc = t.inc }

let next32 t =
  let old = t.s in
  t.s <- Int64.add (Int64.mul old multiplier) t.inc;
  let xorshifted =
    Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27
  in
  let xorshifted = Int64.to_int (Int64.logand xorshifted 0xFFFFFFFFL) in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  if rot = 0 then xorshifted
  else ((xorshifted lsr rot) lor (xorshifted lsl (32 - rot))) land 0xFFFFFFFF
