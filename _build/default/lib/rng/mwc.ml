type state = { mutable x : int64 }

let name = "mwc32"

(* MWC with a = 4294957665 = 0xFFFFDA61: x and carry packed in 64 bits. *)
let a = 0xFFFFDA61L

let create seed =
  let sm = Splitmix.create seed in
  (* Low 32 bits = x, high 32 bits = carry; carry must be in [1, a-1]. *)
  let x = Int64.logand (Splitmix.next sm) 0xFFFFFFFFL in
  let c = Int64.add 1L (Int64.rem (Splitmix.next_nonzero sm) (Int64.sub a 2L)) in
  let c = if Int64.compare c 0L < 0 then Int64.neg c else c in
  { x = Int64.logor x (Int64.shift_left c 32) }

let copy t = { x = t.x }

let next32 t =
  let x = Int64.logand t.x 0xFFFFFFFFL in
  let c = Int64.shift_right_logical t.x 32 in
  t.x <- Int64.add (Int64.mul a x) c;
  Int64.to_int (Int64.logand t.x 0xFFFFFFFFL)
