(** Statistical qualification battery for the MBPTA-class generators.

    Agirre et al. (DSD 2015) argue that a PRNG used for time randomization in
    a safety-critical (IEC-61508 SIL3) context must come with statistical
    evidence of uniformity and independence.  This module provides the
    classic screening tests; each returns a test statistic and the
    information needed to decide acceptance at a significance level.

    These are self-contained (they do not depend on [repro_stats], which sits
    above this library in the build order); p-values are computed with local
    chi-square / normal tail approximations adequate for screening. *)

type verdict = { statistic : float; p_value : float; passed : bool }

val pp_verdict : Format.formatter -> verdict -> unit

(** [chi_square_uniformity ?alpha ?buckets prng ~draws] bins [draws] outputs
    of [Prng.float] into [buckets] equal cells and tests uniformity. *)
val chi_square_uniformity : ?alpha:float -> ?buckets:int -> Prng.t -> draws:int -> verdict

(** [monobit ?alpha prng ~draws] counts one-bits over [draws] 32-bit outputs
    and compares to the binomial expectation (NIST SP 800-22 frequency
    test). *)
val monobit : ?alpha:float -> Prng.t -> draws:int -> verdict

(** [runs ?alpha prng ~draws] Wald-Wolfowitz runs test on the
    above/below-median sequence of [draws] floats: detects serial
    dependence. *)
val runs : ?alpha:float -> Prng.t -> draws:int -> verdict

(** [serial_correlation ?alpha ?lag prng ~draws] lag-[lag] (default 1)
    autocorrelation of [draws] floats, normal-approximated under H0. *)
val serial_correlation : ?alpha:float -> ?lag:int -> Prng.t -> draws:int -> verdict

(** [block_frequency ?alpha ?block_bits prng ~draws] — NIST SP 800-22 block
    frequency test: the one-bit proportion inside each [block_bits]-bit
    block (default 128) must not drift; chi-square over blocks. *)
val block_frequency : ?alpha:float -> ?block_bits:int -> Prng.t -> draws:int -> verdict

(** [gap ?alpha prng ~draws] — Knuth's gap test on [[0, 0.5)]: the gaps
    between successive hits of the target interval are geometric(1/2);
    chi-square against that law with gap lengths binned at 0..7 and
    ">= 8". *)
val gap : ?alpha:float -> Prng.t -> draws:int -> verdict

(** [qualify ?alpha ?draws prng] runs the whole battery and returns the
    labelled verdicts.  A generator is MBPTA-qualified when every test
    passes. *)
val qualify : ?alpha:float -> ?draws:int -> Prng.t -> (string * verdict) list

val all_passed : (string * verdict) list -> bool
