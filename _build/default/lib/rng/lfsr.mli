(** 64-bit Galois linear-feedback shift register with a maximal-length
    polynomial.  LFSRs are the classic hardware randomization primitive; the
    IEC-61508-qualified generator of the reference platform is built from
    LFSR stages.  One output bit is produced per shift; [next32] gathers 32
    shifts, so the generator is slower but matches a bit-serial hardware
    implementation. *)

include Generator.S
