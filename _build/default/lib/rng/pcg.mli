(** PCG32 (O'Neill, 2014): 64-bit LCG state with a permuted xorshift-rotate
    output function.  Included as an alternative qualified generator. *)

include Generator.S
