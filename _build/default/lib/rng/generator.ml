module type S = sig
  type state

  val name : string
  val create : int64 -> state
  val next32 : state -> int
  val copy : state -> state
end
