(** Xorshift128+ generator (Vigna, 2014): 128-bit state, three shifts and an
    addition per output.  Cheap enough for an FPGA datapath, and the default
    generator used by the time-randomized platform model. *)

include Generator.S
