type state = { mutable r : int64 }

let name = "lfsr64"

(* Maximal-length polynomial x^64 + x^63 + x^61 + x^60 + 1 (taps as a mask). *)
let taps = 0xD800000000000000L

let create seed =
  let sm = Splitmix.create seed in
  { r = Splitmix.next_nonzero sm }

let shift t =
  let lsb = Int64.logand t.r 1L in
  t.r <- Int64.shift_right_logical t.r 1;
  if Int64.equal lsb 1L then t.r <- Int64.logxor t.r taps;
  Int64.to_int lsb

let next32 t =
  let rec gather acc i = if i = 32 then acc else gather ((acc lsl 1) lor shift t) (i + 1) in
  gather 0 0

let copy t = { r = t.r }
