(** Common interface implemented by every hardware-class pseudo-random number
    generator in this library.

    The paper relies on a pseudo-random number generator "shown to provide
    enough randomization for MBPTA" (Agirre et al., DSD 2015, an IEC-61508
    SIL3-class generator).  All generators here are of the same family:
    small-state, cheap enough for a hardware implementation, and qualified by
    the statistical battery in {!Quality}. *)

module type S = sig
  type state

  (** Human-readable generator name, e.g. ["xorshift128+"]. *)
  val name : string

  (** [create seed] initializes the state by expanding [seed] with
      {!Splitmix}; equal seeds give equal streams. *)
  val create : int64 -> state

  (** [next32 s] returns 32 uniformly distributed bits in [[0, 2^32)]
      (as a non-negative [int]) and advances the state. *)
  val next32 : state -> int

  (** [copy s] snapshots the state: the copy replays the same stream. *)
  val copy : state -> state
end
