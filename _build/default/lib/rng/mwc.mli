(** Multiply-with-carry generator (Marsaglia): 32-bit lag-1 MWC with
    multiplier 4294957665; tiny state, long period, hardware-friendly
    (one multiply and one add per output). *)

include Generator.S
