type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from MurmurHash3 / splitmix64 reference implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let rec next_nonzero t =
  let v = next t in
  if Int64.equal v 0L then next_nonzero t else v
