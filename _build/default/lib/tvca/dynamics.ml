type params = {
  inertia : float;
  damping : float;
  stiffness : float;
  actuator_gain : float;
}

let default_params = { inertia = 1.2; damping = 0.8; stiffness = 4.0; actuator_gain = 6.0 }

type state = { theta : float; omega : float }

let initial ~theta ~omega = { theta; omega }

(* theta' = omega; omega' = (G u - c omega - k theta + d) / J *)
let derivative p ~u ~disturbance s =
  let alpha =
    ((p.actuator_gain *. u) -. (p.damping *. s.omega) -. (p.stiffness *. s.theta)
    +. disturbance)
    /. p.inertia
  in
  (s.omega, alpha)

let angular_acceleration p ~u ~disturbance s = snd (derivative p ~u ~disturbance s)

let step p ~dt ~u ~disturbance s =
  let eval s = derivative p ~u ~disturbance s in
  let k1t, k1o = eval s in
  let mid1 = { theta = s.theta +. (dt /. 2. *. k1t); omega = s.omega +. (dt /. 2. *. k1o) } in
  let k2t, k2o = eval mid1 in
  let mid2 = { theta = s.theta +. (dt /. 2. *. k2t); omega = s.omega +. (dt /. 2. *. k2o) } in
  let k3t, k3o = eval mid2 in
  let end_ = { theta = s.theta +. (dt *. k3t); omega = s.omega +. (dt *. k3o) } in
  let k4t, k4o = eval end_ in
  {
    theta = s.theta +. (dt /. 6. *. (k1t +. (2. *. k2t) +. (2. *. k3t) +. k4t));
    omega = s.omega +. (dt /. 6. *. (k1o +. (2. *. k2o) +. (2. *. k3o) +. k4o));
  }

let simulate p ~dt ~steps ~u ~disturbance s0 =
  let out = Array.make (steps + 1) s0 in
  for i = 1 to steps do
    out.(i) <- step p ~dt ~u:(u (i - 1)) ~disturbance:(disturbance (i - 1)) out.(i - 1)
  done;
  out
