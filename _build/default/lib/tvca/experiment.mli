(** Measurement harness: executes TVCA runs on a configured platform,
    following the paper's protocol — for every run the caches are flushed,
    the platform gets a fresh randomization seed, and a fresh input scenario
    is generated (runs are then independent by construction, which is what
    the i.i.d. tests verify downstream).

    A fixed [base_seed] makes a whole measurement campaign reproducible:
    run [i]'s scenario and platform seeds are pure functions of
    [(base_seed, i)]. *)

type t

(** [create ?frames ?variant ?contenders ~config ~base_seed ()] prepares the
    program (built once — the binary does not change across runs) and its
    layout. *)
val create :
  ?frames:int ->
  ?gains:Controller.gains ->
  ?variant:Codegen.variant ->
  ?contenders:float list ->
  config:Repro_platform.Config.t ->
  base_seed:int64 ->
  unit ->
  t

val config : t -> Repro_platform.Config.t
val program : t -> Repro_isa.Program.t

(** [run t ~run_index] — one measured run; returns the full metrics. *)
val run : t -> run_index:int -> Repro_platform.Metrics.t

(** [measure t ~run_index] — execution time (cycles) only. *)
val measure : t -> run_index:int -> float

(** [collect t ~runs] — the measurement series for a campaign. *)
val collect : t -> runs:int -> float array

(** [path_signature t ~run_index] — hash of the execution path this run's
    inputs induce (layout/platform independent). *)
val path_signature : t -> run_index:int -> int

(** [check_functional t ~run_index] — executes the generated code and
    compares its commands against the golden controller's; returns the
    maximum absolute difference (0. means bit-identical). *)
val check_functional : t -> run_index:int -> float

(** [with_layout t layout] — same experiment, different link layout (for the
    layout-sensitivity ablation). *)
val with_layout : t -> Repro_isa.Layout.t -> t

val layout : t -> Repro_isa.Layout.t
