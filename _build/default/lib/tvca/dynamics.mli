(** Plant model of the thrust-vector-control loop: per-axis nozzle attitude
    dynamics.

    Each axis is a damped second-order rotational system
      J theta'' = G u - c theta' - k theta + d(t)
    (inertia [J], actuator gain [G], viscous damping [c], aerodynamic
    restoring stiffness [k], external disturbance [d]).  Integrated with
    classic RK4.  This is the {e environment} side of the case study: it
    produces the sensor readings the on-board software consumes, standing in
    for the closed-loop model the ESA application was generated from. *)

type params = {
  inertia : float;
  damping : float;
  stiffness : float;
  actuator_gain : float;
}

(** Plausible nozzle-dynamics constants; used by the default mission. *)
val default_params : params

type state = { theta : float;  (** deflection angle, rad *) omega : float  (** rad/s *) }

val initial : theta:float -> omega:float -> state

(** [step params ~dt ~u ~disturbance s] advances one RK4 step with constant
    command [u] and disturbance torque over the step. *)
val step : params -> dt:float -> u:float -> disturbance:float -> state -> state

(** Instantaneous angular acceleration at state [s] — what an accelerometer
    channel observes. *)
val angular_acceleration : params -> u:float -> disturbance:float -> state -> float

(** [simulate params ~dt ~steps ~u ~disturbance s] — [u i] and
    [disturbance i] are sampled at each step; returns the trajectory
    including the initial state ([steps + 1] entries). *)
val simulate :
  params ->
  dt:float ->
  steps:int ->
  u:(int -> float) ->
  disturbance:(int -> float) ->
  state ->
  state array
