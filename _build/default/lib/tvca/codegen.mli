(** Code generator: turns the {!Controller} model into programs for the
    platform's instruction set, the way the ESA TVCA C code was
    auto-generated from its closed-loop model.

    The generated code mirrors the golden implementation
    operation-for-operation (same arithmetic, same evaluation order, same
    branch structure), so functional equivalence is testable exactly.  In
    the style of model-generated code, the per-channel filter chains are
    fully unrolled and all numeric constants are inlined as immediates —
    the program is therefore generated {e for} a particular set of gains,
    and only sensor/reference data varies between runs. *)

(** Which tasks the program's per-frame schedule runs.  [Full] is the
    fixed-priority order of the application: sensor acquisition, control X,
    control Y. *)
type variant = Full | Sensor_only | Control_x_only | Control_y_only

(** Samples per frame per channel; equals the FIR tap count. *)
val samples_per_frame : int

type axis = [ `X | `Y ]
type channel = [ `Position | `Rate | `Acceleration ]

val axes : axis list
val channels : channel list

(** Data symbol names of the generated program. *)
val sym_sensor : axis:axis -> channel:channel -> string

val sym_ref_x : string
val sym_ref_y : string
val sym_cmd_x : string
val sym_cmd_y : string
val sym_state : string
val sym_scratch : string
val sym_history_x : string
val sym_history_y : string
val sym_gain_table : string
val sym_covariance : string

(** Indices into the [state] symbol. *)
module State : sig
  val filt_x : int
  val filt_y : int
  val integ_x : int
  val integ_y : int
  val prev_e_x : int
  val prev_e_y : int
  val cov_proxy : int
  val count : int
end

(** [program ?variant ?gains ~frames ()] — the schedule loop over [frames]
    frames ([frames <= Controller.history_length]).  The measured "one run
    of TVCA" is one execution of this program. *)
val program :
  ?variant:variant -> ?gains:Controller.gains -> frames:int -> unit -> Repro_isa.Program.t
