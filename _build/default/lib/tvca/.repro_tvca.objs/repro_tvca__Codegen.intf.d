lib/tvca/codegen.mli: Controller Repro_isa
