lib/tvca/rtos.mli: Format Repro_isa Repro_platform
