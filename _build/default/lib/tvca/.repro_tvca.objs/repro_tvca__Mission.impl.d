lib/tvca/mission.ml: Array Codegen Controller Dynamics Float Repro_isa Repro_rng
