lib/tvca/controller.mli:
