lib/tvca/codegen.ml: Array Controller List Printf Repro_isa
