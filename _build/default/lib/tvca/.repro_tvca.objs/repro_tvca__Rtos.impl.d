lib/tvca/rtos.ml: Array Float Format List Mission Repro_isa Repro_platform Stdlib
