lib/tvca/mission.mli: Controller Repro_isa
