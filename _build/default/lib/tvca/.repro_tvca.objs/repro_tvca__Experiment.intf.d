lib/tvca/experiment.mli: Codegen Controller Repro_isa Repro_platform
