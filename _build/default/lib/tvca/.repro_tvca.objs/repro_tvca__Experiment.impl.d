lib/tvca/experiment.ml: Array Codegen Controller Float Mission Repro_isa Repro_platform Repro_rng
