lib/tvca/dynamics.mli:
