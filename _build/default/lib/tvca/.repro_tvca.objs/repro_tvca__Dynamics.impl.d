lib/tvca/dynamics.ml: Array
