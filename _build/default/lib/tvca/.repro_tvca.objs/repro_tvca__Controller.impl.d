lib/tvca/controller.ml: Array Float
