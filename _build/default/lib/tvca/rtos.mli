(** Preemptive fixed-priority scheduling of the TVCA task set on one core.

    The paper's application "implements a fixed priority scheduler with 3
    periodic tasks".  This module simulates that scheduler at instruction
    granularity: each task is an entry point into the (shared-memory)
    generated program; releases are periodic; at every instruction boundary
    the highest-priority released, unfinished job runs, so a release
    preempts lower-priority work mid-job.  The platform clock is the
    {!Repro_platform.Core_sim} cycle count, so preemption interacts
    honestly with caches — a preempting task evicts the preempted one's
    lines, and the victim pays the reload (cache-related preemption delay).

    The per-activation response times this produces are exactly the
    measurement protocol for task-level probabilistic timing analysis and
    can be cross-checked against {!Repro_mbpta.Schedulability}'s analytical
    response-time bounds. *)

type task_spec = {
  name : string;
  entry : string;  (** label in the shared program, e.g. ["task_sensor"] *)
  priority : int;  (** smaller = more urgent *)
  period : int;  (** release period, cycles *)
  offset : int;  (** first release, cycles *)
}

type task_result = {
  spec : task_spec;
  response_times : float array;  (** per completed activation, cycles *)
  activations : int;  (** completed activations *)
  skipped_releases : int;
      (** releases that arrived while the previous job of the same task was
          still pending (counted as overruns and dropped) *)
}

type t = {
  per_task : task_result list;
  total_cycles : int;
  preemptions : int;  (** times a running job was displaced by a release *)
  idle_cycles : int;
}

(** [run ?context_switch ~core ~program ~layout ~memory ~tasks ~horizon ()]
    — simulates until the platform clock passes [horizon] cycles (jobs in
    flight at the horizon are abandoned).  Each activation [k] of a task
    starts at its [entry] with register [r10] preset to
    [k mod Mission.default_frames] (the frame index the generated code
    expects).  [context_switch] cycles (default 40) are charged whenever
    the running job changes.  Raises [Invalid_argument] on duplicate
    priorities (the fixed-priority order must be total). *)
val run :
  ?context_switch:int ->
  ?frames:int ->
  core:Repro_platform.Core_sim.t ->
  program:Repro_isa.Program.t ->
  layout:Repro_isa.Layout.t ->
  memory:Repro_isa.Memory.t ->
  tasks:task_spec list ->
  horizon:int ->
  unit ->
  t

(** The paper's task set over the generated TVCA program: sensor
    acquisition (highest priority), actuator control X, actuator control Y,
    all at [period] with staggered offsets [0; jitter; 2 jitter]. *)
val tvca_tasks : period:int -> ?release_jitter:int -> unit -> task_spec list

val pp : Format.formatter -> t -> unit
