(** Golden (reference) implementation of the TVCA on-board software.

    This is the high-level control model the {!Codegen} "auto-generates"
    ISA code from, exactly as the ESA application was generated from a
    closed-loop model.  Every arithmetic step here is mirrored
    operation-for-operation by the generated code, so the two can be checked
    against each other bit-for-bit (see the integration tests).

    Three tasks, in fixed-priority order:
    + sensor data acquisition: per-axis outlier rejection then a 16-tap FIR;
    + actuator control X: PID with anti-windup, gain scheduling (FDIV), a
      windowed trend term over the filtered-value history, a scheduled-
      attenuation table lookup (data-dependent addressing), and output
      clamping;
    + actuator control Y: same law plus the cross-axis magnitude
      normalization (FSQRT + FDIV) applied to both commands. *)

type gains = {
  dt : float;  (** control period, s *)
  kp : float;
  ki : float;
  kd : float;
  kt : float;  (** trend (history) term gain *)
  w_position : float;  (** complementary-fusion weight, position channel *)
  w_rate : float;
  w_acceleration : float;
  integ_max : float;  (** anti-windup clamp *)
  u_max : float;  (** per-axis command clamp *)
  u_total_max : float;  (** combined-magnitude limit *)
  jump_threshold : float;  (** sensor outlier-rejection threshold *)
  gain_sched_coeff : float;  (** gain falls as 1/(1 + c |theta|) *)
}

val default_gains : gains

(** FIR filter taps used by the sensor task (16 taps, sums to 1). *)
val fir_taps : float array

(** Trend window (frames) and history ring capacity; a run must not exceed
    [history_length] frames. *)
val window : int

val history_length : int

(** Scheduled-attenuation lookup table and its index scale:
    [index = truncate (|filtered| * table_scale)], clamped to the table. *)
val table_size : int

val table_scale : float
val gain_table : float array

(** Estimator covariance sweep dimensions: a [cov_n x cov_n] row-major
    matrix, one staggered sweep per frame spread over [cov_phases] minor
    frames. *)
val cov_n : int

val cov_phases : int
val cov_decay : float
val cov_coupling : float
val cov_q : float

(** Mutable controller state carried across frames (mirrors the [state],
    [history_x] and [history_y] data symbols of the generated program). *)
type state = {
  mutable filt_x : float;
  mutable filt_y : float;
  mutable integ_x : float;
  mutable integ_y : float;
  mutable prev_e_x : float;
  mutable prev_e_y : float;
  mutable cov_proxy : float;  (** estimator confidence proxy *)
  history_x : float array;
  history_y : float array;
  covariance : float array;  (** cov_n * cov_n, row-major *)
}

val fresh_state : unit -> state

(** [clamp ~limit v] — the exact branch structure the generated code uses:
    [if v >= limit then limit else if v <= -limit then -limit else v]. *)
val clamp : limit:float -> float -> float

(** [sensor_channel g samples] — outlier rejection (in place on a copy) then
    FIR; [samples] length must equal [Array.length fir_taps]. *)
val sensor_channel : gains -> float array -> float

(** [covariance_sweep st ~frame] — the staggered estimator covariance
    propagation (phase [frame mod cov_phases]); updates [st.cov_proxy]. *)
val covariance_sweep : state -> frame:int -> unit

(** [sensor_axis g ~cov_proxy ~position ~rate ~acceleration] — per-channel
    filtering followed by complementary fusion into the axis attitude
    estimate. *)
val sensor_axis :
  gains ->
  cov_proxy:float ->
  position:float array ->
  rate:float array ->
  acceleration:float array ->
  float

(** The three oversampled windows of one axis for one frame. *)
type axis_samples = { position : float array; rate : float array; acceleration : float array }

(** [control_axis g st ~axis ~frame ~reference] — reads the axis' filtered
    value from [st], updates integrator, previous-error and history state,
    returns the clamped command. *)
val control_axis :
  gains -> state -> axis:[ `X | `Y ] -> frame:int -> reference:float -> float

(** [normalize g ~ux ~uy] — cross-axis magnitude limit; returns the possibly
    rescaled pair. *)
val normalize : gains -> ux:float -> uy:float -> float * float

(** [frame g st ~frame ~samples_x ~samples_y ~ref_x ~ref_y] — one full frame
    in priority order; returns the final (normalized) commands. *)
val frame :
  gains ->
  state ->
  frame:int ->
  samples_x:axis_samples ->
  samples_y:axis_samples ->
  ref_x:float ->
  ref_y:float ->
  float * float
