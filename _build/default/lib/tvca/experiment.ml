module Platform = Repro_platform
module Isa = Repro_isa

type t = {
  frames : int;
  gains : Controller.gains;
  contenders : float list;
  config : Platform.Config.t;
  base_seed : int64;
  program : Isa.Program.t;
  layout : Isa.Layout.t;
}

(* Derive independent per-run seeds for scenario (stream 0) and platform
   (stream 1): one splitmix stream per run, indexed in counter mode. *)
let derive_seed base run stream =
  let sm = Repro_rng.Splitmix.create base in
  let rec skip k = if k > 0 then (ignore (Repro_rng.Splitmix.next sm); skip (k - 1)) in
  skip ((run * 2) + stream);
  Repro_rng.Splitmix.next sm

let create ?(frames = Mission.default_frames) ?(gains = Controller.default_gains)
    ?(variant = Codegen.Full) ?(contenders = []) ~config ~base_seed () =
  let program = Codegen.program ~variant ~gains ~frames () in
  let layout = Isa.Layout.sequential program in
  { frames; gains; contenders; config; base_seed; program; layout }

let config t = t.config
let program t = t.program
let layout t = t.layout
let with_layout t layout = { t with layout }

let scenario t ~run_index =
  Mission.generate ~frames:t.frames ~gains:t.gains
    ~seed:(derive_seed t.base_seed run_index 0) ()

let prepared_memory t ~run_index =
  let sc = scenario t ~run_index in
  let memory = Isa.Memory.create t.program in
  Mission.load_memory sc memory;
  (sc, memory)

let run t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  let core =
    Platform.Core_sim.create ~contenders:t.contenders ~config:t.config
      ~seed:(derive_seed t.base_seed run_index 1) ()
  in
  Platform.Core_sim.run_program core ~program:t.program ~layout:t.layout ~memory

let measure t ~run_index = float_of_int (Platform.Metrics.cycles (run t ~run_index))

let collect t ~runs = Array.init runs (fun i -> measure t ~run_index:i)

let path_signature t ~run_index =
  let _, memory = prepared_memory t ~run_index in
  Isa.Executor.path_signature ~program:t.program ~layout:t.layout ~memory ()

let check_functional t ~run_index =
  let sc, memory = prepared_memory t ~run_index in
  let no_timing (_ : Isa.Instr.retired) = () in
  let (_ : Isa.Executor.stats) =
    Isa.Executor.run ~program:t.program ~layout:t.layout ~memory ~on_retire:no_timing ()
  in
  let got_x = Isa.Memory.read_array memory Codegen.sym_cmd_x in
  let got_y = Isa.Memory.read_array memory Codegen.sym_cmd_y in
  let worst = ref 0. in
  for k = 0 to t.frames - 1 do
    worst := Float.max !worst (Float.abs (got_x.(k) -. sc.Mission.expected_cmd_x.(k)));
    worst := Float.max !worst (Float.abs (got_y.(k) -. sc.Mission.expected_cmd_y.(k)))
  done;
  !worst
