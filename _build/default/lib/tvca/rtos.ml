module Isa = Repro_isa
module Platform = Repro_platform

type task_spec = {
  name : string;
  entry : string;
  priority : int;
  period : int;
  offset : int;
}

type task_result = {
  spec : task_spec;
  response_times : float array;
  activations : int;
  skipped_releases : int;
}

type t = {
  per_task : task_result list;
  total_cycles : int;
  preemptions : int;
  idle_cycles : int;
}

(* Mutable per-task scheduling state. *)
type task_state = {
  spec_ : task_spec;
  mutable job : Isa.Executor.Stepper.t option;  (* in-flight activation *)
  mutable released_at : int;  (* release time of the in-flight job *)
  mutable next_release : int;
  mutable activation : int;  (* index of the next activation to release *)
  mutable responses : float list;  (* reversed *)
  mutable skipped : int;
}

let run ?(context_switch = 40) ?(frames = Mission.default_frames) ~core ~program ~layout
    ~memory ~tasks ~horizon () =
  (match
     List.sort_uniq compare (List.map (fun (s : task_spec) -> s.priority) tasks)
   with
  | unique when List.length unique <> List.length tasks ->
      invalid_arg "Rtos.run: duplicate priorities"
  | _ -> ());
  List.iter
    (fun (s : task_spec) ->
      if s.period <= 0 || s.offset < 0 then invalid_arg "Rtos.run: bad period/offset";
      (* validate the entry label up front *)
      ignore (Isa.Program.label_index program s.entry))
    tasks;
  let states =
    tasks
    |> List.sort (fun (a : task_spec) b -> compare a.priority b.priority)
    |> List.map (fun spec_ ->
           {
             spec_;
             job = None;
             released_at = 0;
             next_release = spec_.offset;
             activation = 0;
             responses = [];
             skipped = 0;
           })
  in
  let now () = Platform.Core_sim.cycles core in
  let preemptions = ref 0 in
  let idle_cycles = ref 0 in
  let last_running : task_state option ref = ref None in
  (* Release every job whose time has come; a release finding the previous
     job still in flight is an overrun: counted and dropped. *)
  let release_pending () =
    List.iter
      (fun st ->
        while st.next_release <= now () do
          (match st.job with
          | Some _ -> st.skipped <- st.skipped + 1
          | None ->
              st.job <-
                Some
                  (Isa.Executor.Stepper.create ~entry:st.spec_.entry
                     ~init_regs:[ (10, st.activation mod frames) ]
                     ~program ~layout ~memory ());
              st.released_at <- st.next_release;
              st.activation <- st.activation + 1);
          st.next_release <- st.next_release + st.spec_.period
        done)
      states
  in
  let rec earliest_release = function
    | [] -> max_int
    | st :: rest -> Stdlib.min st.next_release (earliest_release rest)
  in
  let rec highest_ready = function
    | [] -> None
    | st :: rest -> ( match st.job with Some _ -> Some st | None -> highest_ready rest)
  in
  let continue = ref true in
  while !continue && now () < horizon do
    release_pending ();
    match highest_ready states with
    | None ->
        (* idle until the next release (or the horizon) *)
        let wake = Stdlib.min horizon (earliest_release states) in
        let gap = Stdlib.max 1 (wake - now ()) in
        idle_cycles := !idle_cycles + gap;
        Platform.Core_sim.advance core gap;
        if wake >= horizon then continue := false
    | Some st ->
        (match !last_running with
        | Some prev when prev != st ->
            (* the running job changed: charge the context switch, and if the
               displaced job is still in flight this was a preemption *)
            if prev.job <> None then incr preemptions;
            Platform.Core_sim.advance core context_switch
        | Some _ -> ()
        | None -> Platform.Core_sim.advance core context_switch);
        last_running := Some st;
        (match st.job with
        | None -> assert false
        | Some stepper -> (
            match Isa.Executor.Stepper.step stepper with
            | Some retired -> Platform.Core_sim.consume core retired
            | None -> assert false);
            if Isa.Executor.Stepper.finished stepper then begin
              st.responses <- float_of_int (now () - st.released_at) :: st.responses;
              st.job <- None
            end)
  done;
  {
    per_task =
      List.map
        (fun st ->
          {
            spec = st.spec_;
            response_times = Array.of_list (List.rev st.responses);
            activations = List.length st.responses;
            skipped_releases = st.skipped;
          })
        states;
    total_cycles = now ();
    preemptions = !preemptions;
    idle_cycles = !idle_cycles;
  }

let tvca_tasks ~period ?(release_jitter = 0) () =
  [
    { name = "sensor"; entry = "task_sensor"; priority = 0; period; offset = 0 };
    {
      name = "control_x";
      entry = "task_control_x";
      priority = 1;
      period;
      offset = release_jitter;
    };
    {
      name = "control_y";
      entry = "task_control_y";
      priority = 2;
      period;
      offset = 2 * release_jitter;
    };
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%d cycles simulated, %d preemptions, %d idle cycles@,"
    t.total_cycles t.preemptions t.idle_cycles;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s prio %d: %d activations, %d skipped" r.spec.name
        r.spec.priority r.activations r.skipped_releases;
      if r.activations > 0 then begin
        let worst = Array.fold_left Float.max r.response_times.(0) r.response_times in
        let mean =
          Array.fold_left ( +. ) 0. r.response_times /. float_of_int r.activations
        in
        Format.fprintf ppf ", response mean %.0f / max %.0f" mean worst
      end;
      Format.fprintf ppf "@,")
    t.per_task;
  Format.fprintf ppf "@]"
