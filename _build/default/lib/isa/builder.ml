type t = {
  name : string;
  mutable instructions : Instr.t list;  (* reversed *)
  mutable count : int;
  mutable labels : (string * int) list;
  mutable data : Program.data_symbol list;
  mutable fresh : int;
}

let create ~name = { name; instructions = []; count = 0; labels = []; data = []; fresh = 0 }

let emit t i =
  t.instructions <- i :: t.instructions;
  t.count <- t.count + 1

let label t l =
  if List.mem_assoc l t.labels then invalid_arg ("Builder.label: duplicate " ^ l);
  t.labels <- (l, t.count) :: t.labels

let fresh_label t stem =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s__%d" stem t.fresh

let declare_data t ~symbol ~elements =
  t.data <- { Program.symbol; elements } :: t.data

let at ?index_reg ?(offset = 0) base = { Instr.base; index_reg; offset }

let counted_loop t ~counter ~from_ ~below body =
  let head = fresh_label t "loop_head" in
  let exit = fresh_label t "loop_exit" in
  let limit_reg = counter + 1 in
  if limit_reg >= Instr.register_count then
    invalid_arg "Builder.counted_loop: counter register too high (needs counter+1)";
  emit t (Instr.Li (counter, from_));
  emit t (Instr.Li (limit_reg, below));
  label t head;
  emit t (Instr.Bge (counter, limit_reg, exit));
  body ();
  emit t (Instr.Addi (counter, counter, 1));
  emit t (Instr.Jmp head);
  label t exit

let build t ~entry =
  Program.create ~name:t.name
    ~code:(Array.of_list (List.rev t.instructions))
    ~labels:t.labels ~data:(List.rev t.data) ~entry
