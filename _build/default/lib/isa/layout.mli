(** Memory layout: where a program's code and data land in the address
    space.

    The paper's central argument for random placement is that "the memory
    layout of code/data determines the cache sets where they are placed,
    with large impact on program's execution time".  This module makes the
    layout an explicit, controllable object: the deterministic platform's
    execution time depends on it, while the time-randomized platform is
    insensitive to it by construction.

    Instructions are 4 bytes; data elements are 8-byte doubles. *)

type t

val instruction_bytes : int
val element_bytes : int

(** [sequential ?code_base ?data_base ?gap program] — the "natural" linker
    layout: code at [code_base], then each data symbol consecutively from
    [data_base], [gap] bytes between symbols. *)
val sequential : ?code_base:int -> ?data_base:int -> ?gap:int -> Program.t -> t

(** [shifted ~offset program] — the sequential layout with every data symbol
    displaced by [offset] bytes (aligned down to an element): models
    re-linking the same program at a different address, the perturbation a
    user of a deterministic platform must enumerate. *)
val shifted : offset:int -> Program.t -> t

(** [scrambled ~seed program] — code at a seed-dependent base and data
    symbols placed in a seed-dependent order with seed-dependent padding:
    a randomly re-linked executable. *)
val scrambled : seed:int64 -> Program.t -> t

(** Byte address of instruction [index]. *)
val code_address : t -> int -> int

(** [data_address t ~symbol ~element] — byte address of an element.
    Raises [Not_found] for unknown symbols and [Invalid_argument] for
    out-of-bounds elements. *)
val data_address : t -> symbol:string -> element:int -> int

val pp : Format.formatter -> t -> unit
