(** Imperative program builder: the tiny "assembler" used by the TVCA code
    generator and by tests.  Collects instructions, labels and data
    declarations, then seals them into a validated {!Program.t}. *)

type t

val create : name:string -> t

(** [emit t i] appends an instruction. *)
val emit : t -> Instr.t -> unit

(** [label t l] defines [l] at the current position.
    Raises [Invalid_argument] on duplicates. *)
val label : t -> string -> unit

(** [fresh_label t stem] returns a unique label name (not yet placed). *)
val fresh_label : t -> string -> string

(** [declare_data t ~symbol ~elements] declares a data symbol. *)
val declare_data : t -> symbol:string -> elements:int -> unit

(** Addressing helpers. *)
val at : ?index_reg:int -> ?offset:int -> string -> Instr.addressing

(** [counted_loop t ~counter ~from_ ~below body] emits
    [for counter = from_ to below - 1 do body done] using [counter] as the
    loop register; [body] may emit freely but must preserve [counter]. *)
val counted_loop : t -> counter:int -> from_:int -> below:int -> (unit -> unit) -> unit

(** [build t ~entry] seals the program ([entry] must be a defined label). *)
val build : t -> entry:string -> Program.t
