type t = {
  code_base : int;
  data_bases : (string, int * int) Hashtbl.t;  (* symbol -> (base, elements) *)
}

let instruction_bytes = 4
let element_bytes = 8

let place ~code_base ~data_placement program =
  let data_bases = Hashtbl.create 16 in
  List.iter
    (fun (d, base) -> Hashtbl.add data_bases d.Program.symbol (base, d.Program.elements))
    (data_placement program);
  { code_base; data_bases }

let sequential ?(code_base = 0x4000_0000) ?(data_base = 0x4010_0000) ?(gap = 0) program =
  let placement p =
    let next = ref data_base in
    List.map
      (fun d ->
        let base = !next in
        next := base + (d.Program.elements * element_bytes) + gap;
        (d, base))
      (Program.data p)
  in
  place ~code_base ~data_placement:placement program

let shifted ~offset program =
  let aligned = offset / element_bytes * element_bytes in
  sequential ~data_base:(0x4010_0000 + aligned) program

let scrambled ~seed program =
  (* A tiny deterministic mixer (splitmix-style) keeps this module free of
     dependencies; layouts only need to differ per seed, not be
     cryptographically random. *)
  let state = ref seed in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0xFFFFFFL)
  in
  let code_base = 0x4000_0000 + (next () mod 4096 * instruction_bytes) in
  let placement p =
    let symbols = Array.of_list (Program.data p) in
    (* Fisher-Yates with the local mixer. *)
    for i = Array.length symbols - 1 downto 1 do
      let j = next () mod (i + 1) in
      let tmp = symbols.(i) in
      symbols.(i) <- symbols.(j);
      symbols.(j) <- tmp
    done;
    let nextb = ref 0x4010_0000 in
    Array.to_list symbols
    |> List.map (fun d ->
           let pad = next () mod 64 * element_bytes in
           let base = !nextb + pad in
           nextb := base + (d.Program.elements * element_bytes);
           (d, base))
  in
  place ~code_base ~data_placement:placement program

let code_address t index = t.code_base + (index * instruction_bytes)

let data_address t ~symbol ~element =
  match Hashtbl.find_opt t.data_bases symbol with
  | None -> raise Not_found
  | Some (base, elements) ->
      if element < 0 || element >= elements then
        invalid_arg
          (Printf.sprintf "Layout.data_address: %s[%d] out of bounds (size %d)" symbol
             element elements);
      base + (element * element_bytes)

let pp ppf t =
  Format.fprintf ppf "code @ 0x%08x@." t.code_base;
  Hashtbl.iter
    (fun s (base, elements) -> Format.fprintf ppf "%-16s @ 0x%08x (%d elements)@." s base elements)
    t.data_bases
