(** The miniature LEON-class instruction set executed by the platform model.

    A RISC register machine: 16 integer registers (addressing, loop control),
    16 floating-point registers (the control computations), a word-addressed
    float data memory accessed through named symbols, and compare-and-branch
    control flow.  Floating-point divide and square root are the two
    value-dependent-latency operations called out by the paper's FPU
    discussion. *)

(** Number of integer and floating-point registers. *)
val register_count : int

(** Data addresses are symbolic until link time: [base] names a data symbol
    (resolved by {!Layout}), [index_reg] an optional integer register whose
    value is added as an element index, [offset] a constant element index. *)
type addressing = { base : string; index_reg : int option; offset : int }

type t =
  | Li of int * int  (** rd <- constant *)
  | Add of int * int * int  (** rd <- rs1 + rs2 *)
  | Addi of int * int * int  (** rd <- rs1 + constant *)
  | Sub of int * int * int
  | Mul of int * int * int
  | Fli of int * float  (** fd <- constant *)
  | Fld of int * addressing  (** fd <- mem[addr] *)
  | Fst of int * addressing  (** mem[addr] <- fs *)
  | Fadd of int * int * int
  | Fsub of int * int * int
  | Fmul of int * int * int
  | Fdiv of int * int * int
  | Fsqrt of int * int
  | Fabs of int * int
  | Fmov of int * int
  | Fcvt of int * int  (** rd (int) <- truncation of fs *)
  | Icvt of int * int  (** fd <- float of rs *)
  | Blt of int * int * string  (** branch if rs1 < rs2 (integer) *)
  | Bge of int * int * string
  | Beq of int * int * string
  | Bne of int * int * string
  | Fblt of int * int * string  (** branch if fs1 < fs2 *)
  | Fbge of int * int * string
  | Jmp of string
  | Call of string
  | Ret
  | Nop
  | Halt

(** Floating-point operation classes as seen by the FPU timing model. *)
type fpu_op = Fadd_op | Fmul_op | Fdiv_op | Fsqrt_op

(** What a retired instruction asks of the micro-architecture; produced by
    {!Executor} and consumed by the pipeline timing model. *)
type work =
  | Int_alu
  | Int_mul
  | Mem_read of int  (** byte address *)
  | Mem_write of int
  | Fp_short of fpu_op  (** FADD/FMUL-class, fixed latency *)
  | Fp_long of fpu_op * float * float  (** FDIV/FSQRT with operand values *)
  | Ctrl of bool  (** branch: taken? *)
  | No_op

type retired = { fetch_addr : int; work : work }

val pp : Format.formatter -> t -> unit
