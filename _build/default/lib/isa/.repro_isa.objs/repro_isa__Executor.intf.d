lib/isa/executor.mli: Instr Layout Memory Program
