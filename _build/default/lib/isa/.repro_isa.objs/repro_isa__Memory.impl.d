lib/isa/memory.ml: Array Hashtbl List Program
