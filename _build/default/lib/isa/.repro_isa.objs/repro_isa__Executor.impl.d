lib/isa/executor.ml: Array Float Instr Layout List Memory Printf Program
