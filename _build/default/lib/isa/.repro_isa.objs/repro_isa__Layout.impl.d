lib/isa/layout.ml: Array Format Hashtbl Int64 List Printf Program
