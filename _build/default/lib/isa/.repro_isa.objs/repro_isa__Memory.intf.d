lib/isa/memory.mli: Program
