lib/isa/layout.mli: Format Program
