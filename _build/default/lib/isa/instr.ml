let register_count = 16

type addressing = { base : string; index_reg : int option; offset : int }

type t =
  | Li of int * int
  | Add of int * int * int
  | Addi of int * int * int
  | Sub of int * int * int
  | Mul of int * int * int
  | Fli of int * float
  | Fld of int * addressing
  | Fst of int * addressing
  | Fadd of int * int * int
  | Fsub of int * int * int
  | Fmul of int * int * int
  | Fdiv of int * int * int
  | Fsqrt of int * int
  | Fabs of int * int
  | Fmov of int * int
  | Fcvt of int * int
  | Icvt of int * int
  | Blt of int * int * string
  | Bge of int * int * string
  | Beq of int * int * string
  | Bne of int * int * string
  | Fblt of int * int * string
  | Fbge of int * int * string
  | Jmp of string
  | Call of string
  | Ret
  | Nop
  | Halt

type fpu_op = Fadd_op | Fmul_op | Fdiv_op | Fsqrt_op

type work =
  | Int_alu
  | Int_mul
  | Mem_read of int
  | Mem_write of int
  | Fp_short of fpu_op
  | Fp_long of fpu_op * float * float
  | Ctrl of bool
  | No_op

type retired = { fetch_addr : int; work : work }

let pp_addr ppf a =
  match a.index_reg with
  | None -> Format.fprintf ppf "%s[%d]" a.base a.offset
  | Some r -> Format.fprintf ppf "%s[r%d+%d]" a.base r a.offset

let pp ppf = function
  | Li (rd, v) -> Format.fprintf ppf "li r%d, %d" rd v
  | Add (rd, r1, r2) -> Format.fprintf ppf "add r%d, r%d, r%d" rd r1 r2
  | Addi (rd, r1, v) -> Format.fprintf ppf "addi r%d, r%d, %d" rd r1 v
  | Sub (rd, r1, r2) -> Format.fprintf ppf "sub r%d, r%d, r%d" rd r1 r2
  | Mul (rd, r1, r2) -> Format.fprintf ppf "mul r%d, r%d, r%d" rd r1 r2
  | Fli (fd, v) -> Format.fprintf ppf "fli f%d, %g" fd v
  | Fld (fd, a) -> Format.fprintf ppf "fld f%d, %a" fd pp_addr a
  | Fst (fs, a) -> Format.fprintf ppf "fst f%d, %a" fs pp_addr a
  | Fadd (fd, f1, f2) -> Format.fprintf ppf "fadd f%d, f%d, f%d" fd f1 f2
  | Fsub (fd, f1, f2) -> Format.fprintf ppf "fsub f%d, f%d, f%d" fd f1 f2
  | Fmul (fd, f1, f2) -> Format.fprintf ppf "fmul f%d, f%d, f%d" fd f1 f2
  | Fdiv (fd, f1, f2) -> Format.fprintf ppf "fdiv f%d, f%d, f%d" fd f1 f2
  | Fsqrt (fd, f1) -> Format.fprintf ppf "fsqrt f%d, f%d" fd f1
  | Fabs (fd, f1) -> Format.fprintf ppf "fabs f%d, f%d" fd f1
  | Fmov (fd, f1) -> Format.fprintf ppf "fmov f%d, f%d" fd f1
  | Fcvt (rd, f1) -> Format.fprintf ppf "fcvt r%d, f%d" rd f1
  | Icvt (fd, r1) -> Format.fprintf ppf "icvt f%d, r%d" fd r1
  | Blt (r1, r2, l) -> Format.fprintf ppf "blt r%d, r%d, %s" r1 r2 l
  | Bge (r1, r2, l) -> Format.fprintf ppf "bge r%d, r%d, %s" r1 r2 l
  | Beq (r1, r2, l) -> Format.fprintf ppf "beq r%d, r%d, %s" r1 r2 l
  | Bne (r1, r2, l) -> Format.fprintf ppf "bne r%d, r%d, %s" r1 r2 l
  | Fblt (f1, f2, l) -> Format.fprintf ppf "fblt f%d, f%d, %s" f1 f2 l
  | Fbge (f1, f2, l) -> Format.fprintf ppf "fbge f%d, f%d, %s" f1 f2 l
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Call l -> Format.fprintf ppf "call %s" l
  | Ret -> Format.fprintf ppf "ret"
  | Nop -> Format.fprintf ppf "nop"
  | Halt -> Format.fprintf ppf "halt"
