(** A program: a flat instruction array with named labels, a set of named
    data symbols (float arrays in data memory), and an entry label.

    Programs are built with {!Builder}, placed in memory by {!Layout} and run
    by {!Executor}. *)

type data_symbol = { symbol : string; elements : int }

type t

(** [create ~name ~code ~labels ~data ~entry] — validates that every branch
    target and [entry] are defined labels, register indices are in range,
    and every addressing base is a declared data symbol.
    Raises [Invalid_argument] otherwise. *)
val create :
  name:string ->
  code:Instr.t array ->
  labels:(string * int) list ->
  data:data_symbol list ->
  entry:string ->
  t

val name : t -> string
val code : t -> Instr.t array
val data : t -> data_symbol list
val entry : t -> string

(** [label_index t l] — instruction index of label [l].
    Raises [Not_found] for an unknown label. *)
val label_index : t -> string -> int

(** [data_symbol t s] — declared size (elements) of symbol [s]. *)
val data_symbol : t -> string -> data_symbol

(** Total static instruction count. *)
val length : t -> int

val pp : Format.formatter -> t -> unit
