type data_symbol = { symbol : string; elements : int }

type t = {
  name : string;
  code : Instr.t array;
  labels : (string, int) Hashtbl.t;
  data : data_symbol list;
  data_index : (string, data_symbol) Hashtbl.t;
  entry : string;
}

let check_register r = if r < 0 || r >= Instr.register_count then invalid_arg "register out of range"

let validate t =
  let check_label l =
    if not (Hashtbl.mem t.labels l) then invalid_arg ("undefined label: " ^ l)
  in
  let check_addr (a : Instr.addressing) =
    if not (Hashtbl.mem t.data_index a.Instr.base) then
      invalid_arg ("undefined data symbol: " ^ a.Instr.base);
    (match a.Instr.index_reg with Some r -> check_register r | None -> ())
  in
  check_label t.entry;
  Array.iter
    (fun instr ->
      match instr with
      | Instr.Li (rd, _) -> check_register rd
      | Instr.Add (a, b, c) | Instr.Sub (a, b, c) | Instr.Mul (a, b, c)
      | Instr.Fadd (a, b, c) | Instr.Fsub (a, b, c) | Instr.Fmul (a, b, c)
      | Instr.Fdiv (a, b, c) ->
          check_register a;
          check_register b;
          check_register c
      | Instr.Addi (a, b, _) -> check_register a; check_register b
      | Instr.Fli (fd, _) -> check_register fd
      | Instr.Fld (fd, addr) -> check_register fd; check_addr addr
      | Instr.Fst (fs, addr) -> check_register fs; check_addr addr
      | Instr.Fsqrt (a, b) | Instr.Fabs (a, b) | Instr.Fmov (a, b)
      | Instr.Fcvt (a, b) | Instr.Icvt (a, b) ->
          check_register a;
          check_register b
      | Instr.Blt (a, b, l) | Instr.Bge (a, b, l) | Instr.Beq (a, b, l)
      | Instr.Bne (a, b, l) | Instr.Fblt (a, b, l) | Instr.Fbge (a, b, l) ->
          check_register a;
          check_register b;
          check_label l
      | Instr.Jmp l | Instr.Call l -> check_label l
      | Instr.Ret | Instr.Nop | Instr.Halt -> ())
    t.code

let create ~name ~code ~labels ~data ~entry =
  let label_table = Hashtbl.create 16 in
  List.iter
    (fun (l, i) ->
      if Hashtbl.mem label_table l then invalid_arg ("duplicate label: " ^ l);
      if i < 0 || i > Array.length code then invalid_arg ("label out of code range: " ^ l);
      Hashtbl.add label_table l i)
    labels;
  let data_index = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if d.elements <= 0 then invalid_arg ("empty data symbol: " ^ d.symbol);
      if Hashtbl.mem data_index d.symbol then
        invalid_arg ("duplicate data symbol: " ^ d.symbol);
      Hashtbl.add data_index d.symbol d)
    data;
  let t = { name; code; labels = label_table; data; data_index; entry } in
  validate t;
  t

let name t = t.name
let code t = t.code
let data t = t.data
let entry t = t.entry

let label_index t l =
  match Hashtbl.find_opt t.labels l with Some i -> i | None -> raise Not_found

let data_symbol t s =
  match Hashtbl.find_opt t.data_index s with Some d -> d | None -> raise Not_found

let length t = Array.length t.code

let pp ppf t =
  Format.fprintf ppf "program %s (%d instructions, entry %s)@." t.name (length t) t.entry;
  (* Invert the label table for listing. *)
  let by_index = Hashtbl.create 16 in
  Hashtbl.iter (fun l i -> Hashtbl.add by_index i l) t.labels;
  Array.iteri
    (fun i instr ->
      List.iter (fun l -> Format.fprintf ppf "%s:@." l) (Hashtbl.find_all by_index i);
      Format.fprintf ppf "  %4d  %a@." i Instr.pp instr)
    t.code
