(* Tests for repro_stats: special-function reference values, descriptive
   statistics, ECDF, distributions (closed-form values, quantile/cdf
   round-trips, sampling moments), independence/identical-distribution
   tests under H0 and H1, and the optimization toolkit. *)

module Prng = Repro_rng.Prng
module S = Repro_stats

let checkb = Alcotest.check Alcotest.bool

let close ?(tol = 1e-9) what expected got =
  if Float.abs (expected -. got) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected got

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_gamma () =
  close "log_gamma 1" 0. (S.Special.log_gamma 1.);
  close "log_gamma 2" 0. (S.Special.log_gamma 2.);
  close ~tol:1e-10 "log_gamma 5" (log 24.) (S.Special.log_gamma 5.);
  close ~tol:1e-10 "log_gamma 0.5" (log (sqrt Float.pi)) (S.Special.log_gamma 0.5);
  (* ln Gamma(10.5) = ln(9.5 * 8.5 * ... * 0.5 * sqrt pi) *)
  let reference =
    List.fold_left (fun a x -> a +. log x) (log (sqrt Float.pi))
      [ 0.5; 1.5; 2.5; 3.5; 4.5; 5.5; 6.5; 7.5; 8.5; 9.5 ]
  in
  close ~tol:1e-9 "log_gamma 10.5" reference (S.Special.log_gamma 10.5)

let test_gamma_p_exponential () =
  (* P(1, x) = 1 - exp(-x) *)
  List.iter
    (fun x -> close ~tol:1e-10 "P(1,x)" (1. -. exp (-.x)) (S.Special.gamma_p ~a:1. ~x))
    [ 0.; 0.1; 1.; 2.5; 10. ]

let test_gamma_p_q_complement =
  qtest
    (QCheck.Test.make ~name:"P + Q = 1" ~count:300
       QCheck.(pair (float_range 0.05 20.) (float_range 0. 40.))
       (fun (a, x) ->
         Float.abs (S.Special.gamma_p ~a ~x +. S.Special.gamma_q ~a ~x -. 1.) < 1e-9))

let test_erf_values () =
  close ~tol:1e-7 "erf 1" 0.8427007929497149 (S.Special.erf 1.);
  close ~tol:1e-7 "erf -1" (-0.8427007929497149) (S.Special.erf (-1.));
  close "erf 0" 0. (S.Special.erf 0.)

let test_normal_cdf_values () =
  close ~tol:1e-7 "Phi 0" 0.5 (S.Special.normal_cdf 0.);
  close ~tol:1e-7 "Phi 1.96" 0.9750021048517795 (S.Special.normal_cdf 1.96);
  close ~tol:1e-7 "Phi -1.96" 0.0249978951482205 (S.Special.normal_cdf (-1.96))

let test_normal_quantile_inverse =
  qtest
    (QCheck.Test.make ~name:"normal quantile inverts cdf" ~count:300
       (QCheck.float_range (-5.) 5.)
       (fun z ->
         let p = S.Special.normal_cdf z in
         p <= 0. || p >= 1. || Float.abs (S.Special.normal_quantile p -. z) < 1e-6))

let test_chi_square_df1 () =
  (* For df=1: survival(x) = 2 (1 - Phi(sqrt x)). *)
  List.iter
    (fun x ->
      close ~tol:1e-8 "chi2 df1"
        (2. *. (1. -. S.Special.normal_cdf (sqrt x)))
        (S.Special.chi_square_survival ~df:1 x))
    [ 0.5; 1.; 3.84; 10. ]

let test_chi_square_df2 () =
  (* For df=2 the chi-square is exponential with rate 1/2. *)
  List.iter
    (fun x ->
      close ~tol:1e-10 "chi2 df2" (exp (-.x /. 2.)) (S.Special.chi_square_survival ~df:2 x))
    [ 0.1; 1.; 5.99; 20. ]

let test_kolmogorov_survival () =
  close ~tol:2e-3 "K median" 0.5 (S.Special.kolmogorov_survival 0.82757);
  close ~tol:2e-3 "K 5% critical" 0.05 (S.Special.kolmogorov_survival 1.3581);
  close "K at 0" 1. (S.Special.kolmogorov_survival 0.);
  checkb "monotone" true
    (S.Special.kolmogorov_survival 0.5 > S.Special.kolmogorov_survival 1.0)

let test_betainc_closed_forms () =
  (* I_x(1, 1) = x: Beta(1,1) is the uniform distribution. *)
  List.iter
    (fun x -> close ~tol:1e-12 "I_x(1,1)" x (S.Special.betainc ~a:1. ~b:1. ~x))
    [ 0.; 0.125; 0.5; 0.75; 1. ];
  (* I_x(1/2, 1/2) = (2/pi) arcsin(sqrt x) — the arcsine distribution. *)
  List.iter
    (fun x ->
      close ~tol:1e-10 "I_x(.5,.5)"
        (2. /. Float.pi *. asin (sqrt x))
        (S.Special.betainc ~a:0.5 ~b:0.5 ~x))
    [ 0.01; 0.3; 0.5; 0.9; 0.99 ];
  (* I_x(2, 2) = x^2 (3 - 2x). *)
  List.iter
    (fun x ->
      close ~tol:1e-12 "I_x(2,2)"
        (x *. x *. (3. -. (2. *. x)))
        (S.Special.betainc ~a:2. ~b:2. ~x))
    [ 0.1; 0.4; 0.5; 0.8 ]

let test_betainc_symmetry =
  qtest
    (QCheck.Test.make ~name:"I_x(a,b) = 1 - I_(1-x)(b,a)" ~count:300
       QCheck.(triple (float_range 0.1 20.) (float_range 0.1 20.) (float_range 0. 1.))
       (fun (a, b, x) ->
         Float.abs
           (S.Special.betainc ~a ~b ~x +. S.Special.betainc ~a:b ~b:a ~x:(1. -. x) -. 1.)
         < 1e-9))

let test_student_t_survival_cauchy () =
  (* df = 1 is the Cauchy distribution: S(t) = 1/2 - atan(t)/pi. *)
  List.iter
    (fun t ->
      close ~tol:1e-10 "t-survival df=1"
        (0.5 -. (atan t /. Float.pi))
        (S.Special.student_t_survival ~df:1. t))
    [ -5.; -1.; 0.; 0.5; 1.; 3.; 12. ]

let test_student_t_survival_df2 () =
  (* df = 2 has the closed form S(t) = 1/2 (1 - t / sqrt(2 + t^2)). *)
  List.iter
    (fun t ->
      close ~tol:1e-10 "t-survival df=2"
        (0.5 *. (1. -. (t /. sqrt (2. +. (t *. t)))))
        (S.Special.student_t_survival ~df:2. t))
    [ -4.; -0.5; 0.; 1.; 2.92; 10. ]

let test_student_t_survival_limits () =
  close "t-survival at 0" 0.5 (S.Special.student_t_survival ~df:7. 0.);
  close "t-survival +inf" 0. (S.Special.student_t_survival ~df:3. Float.infinity);
  close "t-survival -inf" 1. (S.Special.student_t_survival ~df:3. Float.neg_infinity);
  checkb "t-survival nan" true (Float.is_nan (S.Special.student_t_survival ~df:3. Float.nan));
  (* Large df approaches the normal survival function. *)
  close ~tol:1e-4 "t-survival df=1e6 ~ normal" (1. -. S.Special.normal_cdf 1.96)
    (S.Special.student_t_survival ~df:1e6 1.96)

(* ------------------------------------------------------------------ *)
(* Welch's t-test and effect size *)

let test_welch_known_value () =
  (* Equal n, equal variance: t = diff / sqrt(2 s^2 / n) and the
     Welch-Satterthwaite df collapses to 2n - 2 = 8.  scipy reference:
     ttest_ind([1..5], [2..6], equal_var=False) -> t = -1.0, p = 0.3466. *)
  let a = [| 1.; 2.; 3.; 4.; 5. |] and b = [| 2.; 3.; 4.; 5.; 6. |] in
  let r = S.Welch.t_test a b in
  close ~tol:1e-12 "t" (-1.) r.S.Welch.t_statistic;
  close ~tol:1e-9 "df" 8. r.S.Welch.df;
  close ~tol:1e-4 "p" 0.34659 r.S.Welch.p_value;
  close "mean_a" 3. r.S.Welch.mean_a;
  close "mean_b" 4. r.S.Welch.mean_b;
  checkb "equal means at alpha=0.05" true r.S.Welch.equal_means;
  (* Consistency with the incomplete beta the p-value is built from. *)
  let df = r.S.Welch.df and t = Float.abs r.S.Welch.t_statistic in
  close ~tol:1e-12 "p from betainc"
    (S.Special.betainc ~a:(df /. 2.) ~b:0.5 ~x:(df /. (df +. (t *. t))))
    r.S.Welch.p_value

let test_welch_identical_samples () =
  let xs = [| 10.; 11.; 12.; 13. |] in
  let r = S.Welch.t_test xs (Array.copy xs) in
  close "t" 0. r.S.Welch.t_statistic;
  close "p" 1. r.S.Welch.p_value;
  checkb "equal" true r.S.Welch.equal_means

let test_welch_zero_variance () =
  (* Both samples constant and equal: no evidence of a difference. *)
  let r = S.Welch.t_test [| 5.; 5.; 5. |] [| 5.; 5.; 5. |] in
  close "t equal constants" 0. r.S.Welch.t_statistic;
  close "p equal constants" 1. r.S.Welch.p_value;
  (* Both constant but different: the difference is certain. *)
  let r = S.Welch.t_test [| 5.; 5.; 5. |] [| 7.; 7.; 7. |] in
  checkb "t -inf" true (r.S.Welch.t_statistic = Float.neg_infinity);
  close "p different constants" 0. r.S.Welch.p_value;
  checkb "leak verdict" false r.S.Welch.equal_means;
  (* One sample constant: df falls back to the other sample's n - 1. *)
  let r = S.Welch.t_test [| 5.; 5.; 5. |] [| 6.; 7.; 8.; 9. |] in
  close ~tol:1e-9 "df one-constant" 3. r.S.Welch.df;
  checkb "p finite" true (r.S.Welch.p_value >= 0. && r.S.Welch.p_value <= 1.)

let test_welch_detects_shift () =
  let g = Prng.create 11L in
  let a = Array.init 200 (fun _ -> Prng.gaussian g) in
  let b = Array.init 200 (fun _ -> 1.5 +. Prng.gaussian g) in
  let r = S.Welch.t_test a b in
  checkb "shift detected" false r.S.Welch.equal_means;
  checkb "p tiny" true (r.S.Welch.p_value < 1e-6)

let test_welch_symmetry =
  qtest
    (QCheck.Test.make ~name:"welch t(a,b) = -t(b,a), same p" ~count:200
       QCheck.(
         pair
           (list_of_size (Gen.int_range 2 30) (float_range (-100.) 100.))
           (list_of_size (Gen.int_range 2 30) (float_range (-100.) 100.)))
       (fun (la, lb) ->
         let a = Array.of_list la and b = Array.of_list lb in
         let r1 = S.Welch.t_test a b and r2 = S.Welch.t_test b a in
         Float.abs (r1.S.Welch.t_statistic +. r2.S.Welch.t_statistic) < 1e-9
         || r1.S.Welch.t_statistic = -.r2.S.Welch.t_statistic (* infinities *))
       )

let test_welch_extreme_variance_df_finite () =
  (* va ~ 1e300 is representable but the naive Welch-Satterthwaite
     formula squares va/na (overflow past ~1e154) and returns nan; the
     log-space implementation keeps df finite. *)
  let a = [| 1e150; 2e150; 3e150 |] and b = [| 1.; 2.; 3. |] in
  let r = S.Welch.t_test a b in
  checkb "df finite" true (Float.is_finite r.S.Welch.df);
  close ~tol:1e-9 "df -> n_a - 1" 2. r.S.Welch.df;
  checkb "p in range" true (r.S.Welch.p_value >= 0. && r.S.Welch.p_value <= 1.);
  (* Past representability the sample variance itself overflows; the df
     falls back to the dominant sample's n - 1 instead of going nan. *)
  let r = S.Welch.t_test [| 1e160; 2e160; 3e160 |] b in
  close ~tol:1e-9 "df overflow fallback" 2. r.S.Welch.df;
  close "p under infinite noise" 1. r.S.Welch.p_value

let test_cohens_d () =
  (* means 2 vs 4, pooled variance ((2*1)+(2*1))/4 = 1 -> d = -2. *)
  close ~tol:1e-12 "d" (-2.) (S.Effect_size.cohens_d [| 1.; 2.; 3. |] [| 3.; 4.; 5. |]);
  close "d identical" 0. (S.Effect_size.cohens_d [| 1.; 2. |] [| 1.; 2. |]);
  (* Zero pooled variance: 0 when means agree, signed infinity otherwise. *)
  close "d constant equal" 0. (S.Effect_size.cohens_d [| 4.; 4. |] [| 4.; 4. |]);
  checkb "d constant unequal" true
    (S.Effect_size.cohens_d [| 4.; 4. |] [| 5.; 5. |] = Float.neg_infinity);
  Alcotest.(check string) "negligible" "negligible" (S.Effect_size.magnitude 0.1);
  Alcotest.(check string) "small" "small" (S.Effect_size.magnitude (-0.3));
  Alcotest.(check string) "medium" "medium" (S.Effect_size.magnitude 0.6);
  Alcotest.(check string) "large" "large" (S.Effect_size.magnitude (-2.))

(* ------------------------------------------------------------------ *)
(* Descriptive *)

let test_descriptive_basics () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  close "mean" 5. (S.Descriptive.mean xs);
  close "population variance" 4. (S.Descriptive.variance xs);
  close ~tol:1e-12 "sample variance" (32. /. 7.) (S.Descriptive.sample_variance xs);
  close "min" 2. (S.Descriptive.min xs);
  close "max" 9. (S.Descriptive.max xs);
  close "median" 4.5 (S.Descriptive.median xs)

let test_quantile_interpolation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  close "q0" 1. (S.Descriptive.quantile xs 0.);
  close "q1" 4. (S.Descriptive.quantile xs 1.);
  close "q50" 2.5 (S.Descriptive.quantile xs 0.5);
  close ~tol:1e-12 "q25" 1.75 (S.Descriptive.quantile xs 0.25)

let test_skewness_symmetric () =
  let xs = [| -3.; -1.; 0.; 1.; 3. |] in
  close ~tol:1e-12 "symmetric skew 0" 0. (S.Descriptive.skewness xs)

let test_kurtosis_normal () =
  let g = Prng.create 3L in
  let xs = Array.init 40_000 (fun _ -> Prng.gaussian g) in
  checkb "excess kurtosis near 0" true (Float.abs (S.Descriptive.kurtosis_excess xs) < 0.15)

let test_summary_consistency =
  qtest
    (QCheck.Test.make ~name:"summary fields consistent" ~count:200
       QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1e3) 1e3))
       (fun xs ->
         let a = Array.of_list xs in
         let s = S.Descriptive.summarize a in
         s.S.Descriptive.minimum <= s.S.Descriptive.q1
         && s.S.Descriptive.q1 <= s.S.Descriptive.median
         && s.S.Descriptive.median <= s.S.Descriptive.q3
         && s.S.Descriptive.q3 <= s.S.Descriptive.maximum
         && s.S.Descriptive.n = Array.length a))

(* ------------------------------------------------------------------ *)
(* ECDF *)

let test_ecdf_basics () =
  let e = S.Ecdf.of_sample [| 3.; 1.; 2. |] in
  close "cdf below" 0. (S.Ecdf.cdf e 0.5);
  close ~tol:1e-12 "cdf mid" (2. /. 3.) (S.Ecdf.cdf e 2.);
  close "cdf top" 1. (S.Ecdf.cdf e 3.);
  close ~tol:1e-12 "ccdf mid" (1. /. 3.) (S.Ecdf.ccdf e 2.)

let test_ecdf_ties () =
  let e = S.Ecdf.of_sample [| 1.; 1.; 1.; 2. |] in
  close "ties counted" 0.75 (S.Ecdf.cdf e 1.);
  let points = S.Ecdf.points e in
  Alcotest.(check int) "two distinct points" 2 (List.length points)

let test_ecdf_monotone =
  qtest
    (QCheck.Test.make ~name:"ecdf cdf is monotone" ~count:200
       QCheck.(
         pair
           (list_of_size (Gen.int_range 1 60) (float_range (-100.) 100.))
           (pair (float_range (-150.) 150.) (float_range (-150.) 150.)))
       (fun (xs, (a, b)) ->
         let e = S.Ecdf.of_sample (Array.of_list xs) in
         let lo = Float.min a b and hi = Float.max a b in
         S.Ecdf.cdf e lo <= S.Ecdf.cdf e hi))

let test_ecdf_ccdf_points_positive () =
  let e = S.Ecdf.of_sample (Array.init 100 float_of_int) in
  List.iter
    (fun (_, p) -> checkb "exceedance in (0,1)" true (p > 0. && p < 1.))
    (S.Ecdf.ccdf_points e)

(* ------------------------------------------------------------------ *)
(* Distributions *)

let prng () = Prng.create 4242L

let test_normal_roundtrip =
  qtest
    (QCheck.Test.make ~name:"normal quantile/cdf roundtrip" ~count:200
       QCheck.(pair (float_range 0.01 0.99) (float_range 0.1 10.))
       (fun (p, sigma) ->
         let d = S.Distribution.Normal.create ~mu:3. ~sigma in
         Float.abs (S.Distribution.Normal.cdf d (S.Distribution.Normal.quantile d p) -. p)
         < 1e-6))

let test_gumbel_closed_form () =
  let d = S.Distribution.Gumbel.create ~mu:0. ~beta:1. in
  close ~tol:1e-12 "cdf at 0" (exp (-1.)) (S.Distribution.Gumbel.cdf d 0.);
  close ~tol:1e-9 "median" (-.log (log 2.)) (S.Distribution.Gumbel.quantile d 0.5);
  close ~tol:1e-9 "mean" 0.5772156649015329 (S.Distribution.Gumbel.mean d);
  close ~tol:1e-9 "std" (Float.pi /. sqrt 6.) (S.Distribution.Gumbel.std d)

let test_gumbel_survival_tail () =
  (* survival must stay meaningful at 1e-15-scale probabilities *)
  let d = S.Distribution.Gumbel.create ~mu:0. ~beta:1. in
  let v = S.Distribution.Gumbel.quantile_of_exceedance d 1e-15 in
  let back = S.Distribution.Gumbel.survival d v in
  checkb "tail roundtrip" true (Float.abs ((back /. 1e-15) -. 1.) < 1e-3)

let test_gumbel_roundtrip =
  qtest
    (QCheck.Test.make ~name:"gumbel quantile/cdf roundtrip" ~count:300
       QCheck.(
         triple (float_range 0.01 0.99) (float_range (-100.) 100.) (float_range 0.1 50.))
       (fun (p, mu, beta) ->
         let d = S.Distribution.Gumbel.create ~mu ~beta in
         Float.abs (S.Distribution.Gumbel.cdf d (S.Distribution.Gumbel.quantile d p) -. p)
         < 1e-9))

let test_gev_gumbel_limit () =
  (* xi -> 0 must agree with the Gumbel special case *)
  let gumbel = S.Distribution.Gumbel.create ~mu:10. ~beta:2. in
  let gev = S.Distribution.Gev.create ~mu:10. ~sigma:2. ~xi:1e-12 in
  List.iter
    (fun x ->
      close ~tol:1e-9 "cdf agree" (S.Distribution.Gumbel.cdf gumbel x)
        (S.Distribution.Gev.cdf gev x))
    [ 5.; 10.; 15.; 30. ]

let test_gev_roundtrip =
  qtest
    (QCheck.Test.make ~name:"gev quantile/cdf roundtrip" ~count:300
       QCheck.(
         triple (float_range 0.01 0.99) (float_range (-0.45) 0.45) (float_range 0.1 20.))
       (fun (p, xi, sigma) ->
         let d = S.Distribution.Gev.create ~mu:0. ~sigma ~xi in
         Float.abs (S.Distribution.Gev.cdf d (S.Distribution.Gev.quantile d p) -. p) < 1e-8))

let test_gev_upper_bound () =
  let bounded = S.Distribution.Gev.create ~mu:0. ~sigma:1. ~xi:(-0.5) in
  (match S.Distribution.Gev.upper_bound bounded with
  | Some b ->
      close ~tol:1e-12 "bound" 2. b;
      close "cdf at bound" 1. (S.Distribution.Gev.cdf bounded 2.1)
  | None -> Alcotest.fail "expected finite upper bound");
  checkb "unbounded for xi>=0" true
    (S.Distribution.Gev.upper_bound (S.Distribution.Gev.create ~mu:0. ~sigma:1. ~xi:0.1)
    = None)

let test_gpd_exponential_case () =
  (* xi = 0 reduces to a shifted exponential *)
  let d = S.Distribution.Gpd.create ~u:5. ~sigma:2. ~xi:0. in
  close ~tol:1e-12 "cdf" (1. -. exp (-1.)) (S.Distribution.Gpd.cdf d 7.);
  close ~tol:1e-9 "quantile" (5. +. (2. *. log 2.)) (S.Distribution.Gpd.quantile d 0.5)

let test_gpd_roundtrip =
  qtest
    (QCheck.Test.make ~name:"gpd quantile/cdf roundtrip" ~count:300
       QCheck.(
         triple (float_range 0.01 0.99) (float_range (-0.45) 0.45) (float_range 0.1 20.))
       (fun (p, xi, sigma) ->
         let d = S.Distribution.Gpd.create ~u:0. ~sigma ~xi in
         Float.abs (S.Distribution.Gpd.cdf d (S.Distribution.Gpd.quantile d p) -. p) < 1e-8))

let test_weibull_closed_form () =
  let d = S.Distribution.Weibull.create ~scale:2. ~shape:1. in
  (* shape 1 is exponential with mean = scale *)
  close ~tol:1e-12 "cdf" (1. -. exp (-1.5)) (S.Distribution.Weibull.cdf d 3.)

let test_sampling_matches_cdf () =
  (* KS one-sample of each sampler against its own cdf *)
  let g = prng () in
  let n = 4000 in
  let check_dist name cdf sample =
    let xs = Array.init n (fun _ -> sample ()) in
    let r = S.Ks.one_sample ~alpha:0.001 xs ~cdf in
    checkb (name ^ " sampler matches cdf") true r.S.Ks.same_distribution
  in
  let gum = S.Distribution.Gumbel.create ~mu:3. ~beta:2. in
  check_dist "gumbel" (S.Distribution.Gumbel.cdf gum) (fun () ->
      S.Distribution.Gumbel.sample gum g);
  let gev = S.Distribution.Gev.create ~mu:0. ~sigma:1. ~xi:0.2 in
  check_dist "gev" (S.Distribution.Gev.cdf gev) (fun () -> S.Distribution.Gev.sample gev g);
  let gpd = S.Distribution.Gpd.create ~u:0. ~sigma:1. ~xi:(-0.2) in
  check_dist "gpd" (S.Distribution.Gpd.cdf gpd) (fun () -> S.Distribution.Gpd.sample gpd g);
  let nor = S.Distribution.Normal.create ~mu:(-2.) ~sigma:3. in
  check_dist "normal" (S.Distribution.Normal.cdf nor) (fun () ->
      S.Distribution.Normal.sample nor g);
  let expo = S.Distribution.Exponential.create ~rate:0.5 in
  check_dist "exponential" (S.Distribution.Exponential.cdf expo) (fun () ->
      S.Distribution.Exponential.sample expo g);
  let wei = S.Distribution.Weibull.create ~scale:1.5 ~shape:2.5 in
  check_dist "weibull" (S.Distribution.Weibull.cdf wei) (fun () ->
      S.Distribution.Weibull.sample wei g)

(* ------------------------------------------------------------------ *)
(* Autocorrelation / Ljung-Box *)

let test_acf_white_noise () =
  let g = prng () in
  let xs = Array.init 5000 (fun _ -> Prng.gaussian g) in
  let r1 = S.Autocorrelation.acf xs ~lag:1 in
  checkb "white noise acf ~ 0" true (Float.abs r1 < 0.05)

let test_acf_of_ar1 () =
  (* AR(1) with phi = 0.8 has acf(1) ~ 0.8 *)
  let g = prng () in
  let n = 20000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.8 *. xs.(i - 1)) +. Prng.gaussian g
  done;
  checkb "ar1 acf near phi" true (Float.abs (S.Autocorrelation.acf xs ~lag:1 -. 0.8) < 0.05)

let test_acf_up_to_length () =
  let xs = Array.init 100 float_of_int in
  Alcotest.(check int) "lags" 10 (Array.length (S.Autocorrelation.acf_up_to xs ~max_lag:10))

let test_ljung_box_white_noise () =
  let g = prng () in
  let rejections = ref 0 in
  for _ = 1 to 40 do
    let xs = Array.init 500 (fun _ -> Prng.gaussian g) in
    let r = S.Ljung_box.test ~alpha:0.05 xs in
    if not r.S.Ljung_box.independent then incr rejections
  done;
  (* 5% nominal level: allow up to 20% empirical in 40 trials *)
  checkb "few false rejections" true (!rejections <= 8)

let test_ljung_box_rejects_ar1 () =
  let g = prng () in
  let n = 1000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.7 *. xs.(i - 1)) +. Prng.gaussian g
  done;
  let r = S.Ljung_box.test ~alpha:0.05 xs in
  checkb "dependent series rejected" false r.S.Ljung_box.independent

let test_ljung_box_p_uniform () =
  (* p-values under H0 should not pile up near 0 *)
  let g = prng () in
  let small = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let xs = Array.init 400 (fun _ -> Prng.gaussian g) in
    let r = S.Ljung_box.test xs in
    if r.S.Ljung_box.p_value < 0.1 then incr small
  done;
  checkb "p-values roughly uniform" true (!small <= trials / 3)

(* ------------------------------------------------------------------ *)
(* KS tests *)

let test_ks_same_distribution () =
  let g = prng () in
  let xs = Array.init 1500 (fun _ -> Prng.gaussian g) in
  let ys = Array.init 1500 (fun _ -> Prng.gaussian g) in
  let r = S.Ks.two_sample ~alpha:0.01 xs ys in
  checkb "same distribution accepted" true r.S.Ks.same_distribution

let test_ks_detects_shift () =
  let g = prng () in
  let xs = Array.init 1000 (fun _ -> Prng.gaussian g) in
  let ys = Array.init 1000 (fun _ -> Prng.gaussian g +. 0.5) in
  let r = S.Ks.two_sample ~alpha:0.05 xs ys in
  checkb "shift detected" false r.S.Ks.same_distribution

let test_ks_statistic_disjoint () =
  (* completely disjoint samples have D = 1 *)
  let xs = [| 1.; 2.; 3. |] and ys = [| 10.; 11.; 12. |] in
  let r = S.Ks.two_sample xs ys in
  close "D = 1" 1. r.S.Ks.statistic

let test_ks_one_sample_uniform () =
  let g = prng () in
  let xs = Array.init 2000 (fun _ -> Prng.float g) in
  let r =
    S.Ks.one_sample ~alpha:0.01 xs ~cdf:(fun x ->
        if x < 0. then 0. else if x > 1. then 1. else x)
  in
  checkb "uniform sample accepted" true r.S.Ks.same_distribution

let test_ks_one_sample_wrong_model () =
  let g = prng () in
  let xs = Array.init 2000 (fun _ -> Prng.float g) in
  let r = S.Ks.one_sample ~alpha:0.05 xs ~cdf:S.Special.normal_cdf in
  checkb "wrong model rejected" false r.S.Ks.same_distribution

let test_split_halves () =
  let a, b = S.Ks.split_halves [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (array (float 0.))) "evens" [| 1.; 3.; 5. |] a;
  Alcotest.(check (array (float 0.))) "odds" [| 2.; 4. |] b

let test_ks_symmetry =
  qtest
    (QCheck.Test.make ~name:"two-sample KS is symmetric" ~count:100
       QCheck.(
         pair
           (list_of_size (Gen.int_range 2 40) (float_range 0. 10.))
           (list_of_size (Gen.int_range 2 40) (float_range 0. 10.)))
       (fun (xs, ys) ->
         let a = Array.of_list xs and b = Array.of_list ys in
         let r1 = S.Ks.two_sample a b and r2 = S.Ks.two_sample b a in
         Float.abs (r1.S.Ks.statistic -. r2.S.Ks.statistic) < 1e-12))

(* ------------------------------------------------------------------ *)
(* Anderson-Darling *)

let test_ad_accepts_true_model () =
  let g = prng () in
  let xs = Array.init 2000 (fun _ -> Prng.float g) in
  let r =
    S.Anderson_darling.test xs ~cdf:(fun x ->
        if x < 0. then 0. else if x > 1. then 1. else x)
  in
  checkb "uniform vs uniform accepted" true r.S.Anderson_darling.accepted

let test_ad_rejects_wrong_model () =
  let g = prng () in
  let xs = Array.init 2000 (fun _ -> Prng.float g) in
  let r = S.Anderson_darling.test xs ~cdf:S.Special.normal_cdf in
  checkb "uniform vs normal rejected" false r.S.Anderson_darling.accepted;
  checkb "tiny p" true (r.S.Anderson_darling.p_value <= 0.01)

let test_ad_more_tail_sensitive_than_ks () =
  (* contaminate only the extreme tail: AD should flag it at least as
     strongly as KS (relative p-values) *)
  let g = prng () in
  let xs =
    Array.init 2000 (fun i ->
        if i < 12 then 0.999999 +. (1e-7 *. Prng.float g) else Prng.float g)
  in
  let cdf x = if x < 0. then 0. else if x > 1. then 1. else x in
  let ad = S.Anderson_darling.test xs ~cdf in
  checkb "tail contamination caught by AD" false ad.S.Anderson_darling.accepted

let test_ad_alpha_validation () =
  checkb "bad alpha rejected" true
    (try
       ignore (S.Anderson_darling.test ~alpha:0.2 [| 1.; 2.; 3.; 4.; 5. |] ~cdf:(fun x -> x /. 6.));
       false
     with Invalid_argument _ -> true)

let test_ad_statistic_reference () =
  (* A2 for the perfectly spaced uniform sample is small and positive *)
  let xs = Array.init 99 (fun i -> float_of_int (i + 1) /. 100.) in
  let r = S.Anderson_darling.test xs ~cdf:(fun x -> x) in
  checkb "near-perfect fit has tiny statistic" true
    (r.S.Anderson_darling.statistic < 0.3 && r.S.Anderson_darling.accepted)

(* ------------------------------------------------------------------ *)
(* Runs test *)

let test_runs_random_series () =
  let g = prng () in
  let xs = Array.init 1000 (fun _ -> Prng.gaussian g) in
  let r = S.Runs_test.test ~alpha:0.01 xs in
  checkb "random accepted" true r.S.Runs_test.random

let test_runs_rejects_trend () =
  let xs = Array.init 200 float_of_int in
  let r = S.Runs_test.test ~alpha:0.05 xs in
  checkb "monotone trend rejected" false r.S.Runs_test.random

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_counts () =
  let h = S.Histogram.create ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "total" 5 (S.Histogram.total h);
  let sum = ref 0 in
  for i = 0 to S.Histogram.bins h - 1 do
    sum := !sum + S.Histogram.count h i
  done;
  Alcotest.(check int) "counts sum to total" 5 !sum

let test_histogram_bounds_cover =
  qtest
    (QCheck.Test.make ~name:"histogram bounds tile the range" ~count:100
       QCheck.(list_of_size (Gen.int_range 2 80) (float_range (-50.) 50.))
       (fun xs ->
         let a = Array.of_list xs in
         let h = S.Histogram.create ~bins:8 a in
         let ok = ref true in
         for i = 0 to S.Histogram.bins h - 2 do
           let _, hi = S.Histogram.bounds h i in
           let lo', _ = S.Histogram.bounds h (i + 1) in
           if Float.abs (hi -. lo') > 1e-9 then ok := false
         done;
         !ok))

(* ------------------------------------------------------------------ *)
(* Optimization *)

let test_golden_section_parabola () =
  let xmin =
    S.Optimize.golden_section ~f:(fun x -> (x -. 3.) ** 2.) ~lo:(-10.) ~hi:10. ()
  in
  close ~tol:1e-6 "parabola min" 3. xmin

let test_nelder_mead_quadratic () =
  let f v = ((v.(0) -. 1.) ** 2.) +. (2. *. ((v.(1) +. 2.) ** 2.)) in
  let best, value = S.Optimize.nelder_mead ~f ~start:[| 0.; 0. |] () in
  checkb "x near 1" true (Float.abs (best.(0) -. 1.) < 1e-3);
  checkb "y near -2" true (Float.abs (best.(1) +. 2.) < 1e-3);
  checkb "value near 0" true (value < 1e-6)

let test_nelder_mead_with_barrier () =
  (* objective returning infinity outside the feasible region *)
  let f v = if v.(0) <= 0. then infinity else v.(0) -. log v.(0) in
  let best, _ = S.Optimize.nelder_mead ~f ~start:[| 2. |] () in
  close ~tol:1e-3 "barrier min at 1" 1. best.(0)

let test_linear_fit_recovers () =
  let xs = Array.init 50 float_of_int in
  let ys = Array.map (fun x -> 2.5 +. (1.5 *. x)) xs in
  let intercept, slope, r2 = S.Optimize.linear_fit xs ys in
  close ~tol:1e-9 "intercept" 2.5 intercept;
  close ~tol:1e-9 "slope" 1.5 slope;
  close ~tol:1e-9 "r2" 1. r2

(* ------------------------------------------------------------------ *)
(* Golden values: frozen outputs of the i.i.d. test statistics on fixed
   vectors.  These pin the numerics across refactors (the PR 3 guard and
   sorting sweep must not move a single bit of any verdict). *)

let lb_vec =
  [|
    12.0; 15.3; 11.8; 14.2; 13.7; 12.9; 16.1; 11.5; 13.3; 14.8;
    12.4; 15.9; 13.1; 12.7; 14.5; 11.9; 15.2; 13.8; 12.2; 14.0;
    13.5; 12.8; 15.6; 11.7; 13.9; 14.3; 12.5; 15.0; 13.2; 12.6;
  |]

let ks_a = [| 1.2; 3.4; 2.2; 5.1; 4.4; 0.7; 3.9; 2.8; 1.6; 4.9 |]
let ks_b = [| 2.1; 3.3; 6.0; 4.1; 5.5; 1.9; 4.7; 3.0; 2.5; 5.9 |]

let test_ljung_box_golden () =
  let r = S.Ljung_box.test lb_vec in
  Alcotest.(check int) "lags" 6 r.S.Ljung_box.lags;
  close ~tol:1e-9 "Q" 50.472344381939351 r.S.Ljung_box.statistic;
  close ~tol:1e-12 "p" 3.7798198192164671e-09 r.S.Ljung_box.p_value;
  checkb "rejected" false r.S.Ljung_box.independent;
  (* Strong even/odd alternation: much larger Q, even smaller p. *)
  let trend = Array.init 30 (fun i -> float_of_int i +. if i mod 2 = 0 then 0.5 else 0.) in
  let t = S.Ljung_box.test trend in
  close ~tol:1e-9 "Q trend" 96.759959838287244 t.S.Ljung_box.statistic;
  checkb "trend rejected" false t.S.Ljung_box.independent

let test_ljung_box_constant () =
  (* Constant series: every autocorrelation is defined as 0, so Q = 0 and
     independence trivially stands. *)
  let r = S.Ljung_box.test (Array.make 12 7.5) in
  close "Q constant" 0. r.S.Ljung_box.statistic;
  close "p constant" 1. r.S.Ljung_box.p_value;
  checkb "constant accepted" true r.S.Ljung_box.independent

let test_ks_two_sample_golden () =
  let r = S.Ks.two_sample ks_a ks_b in
  (* D is pure rank arithmetic — pinned exactly. *)
  close ~tol:0. "D" 0.30000000000000004 r.S.Ks.statistic;
  close ~tol:1e-9 "p" 0.67507815371659508 r.S.Ks.p_value;
  checkb "same distribution" true r.S.Ks.same_distribution

let test_ks_ties_and_constant () =
  (* Tie-heavy samples exercise the <= / < boundary of the ECDF walk. *)
  let tie_a = [| 1.; 1.; 1.; 2.; 2.; 3.; 3.; 3.; 3.; 4. |] in
  let tie_b = [| 1.; 2.; 2.; 2.; 3.; 3.; 4.; 4.; 4.; 4. |] in
  let r = S.Ks.two_sample tie_a tie_b in
  close ~tol:0. "D ties" 0.30000000000000004 r.S.Ks.statistic;
  close ~tol:1e-9 "p ties" 0.67507815371659508 r.S.Ks.p_value;
  (* Identical constant samples: D = 0, p = 1 (not NaN, not a crash). *)
  let c = S.Ks.two_sample (Array.make 10 3.) (Array.make 10 3.) in
  close "D constant" 0. c.S.Ks.statistic;
  close "p constant" 1. c.S.Ks.p_value;
  checkb "constant same" true c.S.Ks.same_distribution

let test_ks_one_sample_golden () =
  let r = S.Ks.one_sample ks_a ~cdf:(fun x -> 1. -. exp (-.x /. 3.)) in
  close ~tol:1e-12 "D" 0.22967995396436067 r.S.Ks.statistic;
  close ~tol:1e-9 "p" 0.60723690569178634 r.S.Ks.p_value

(* ------------------------------------------------------------------ *)
(* Input guards: every kernel must reject malformed input by raising
   [Invalid_argument] — even under -noassert, which the dedicated CI job
   compiles with (an [assert] would silently vanish there). *)

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_guards_survive_noassert () =
  expect_invalid "ljung-box n<10" (fun () -> S.Ljung_box.test (Array.make 9 1.));
  expect_invalid "ljung-box lags" (fun () -> S.Ljung_box.test ~lags:30 (Array.make 30 1.));
  expect_invalid "ks two empty" (fun () -> S.Ks.two_sample [||] ks_b);
  expect_invalid "ks one empty" (fun () -> S.Ks.one_sample [||] ~cdf:(fun _ -> 0.5));
  expect_invalid "runs n<20" (fun () -> S.Runs_test.test (Array.make 19 1.));
  expect_invalid "mean empty" (fun () -> S.Descriptive.mean [||]);
  expect_invalid "summarize empty" (fun () -> S.Descriptive.summarize [||]);
  expect_invalid "sample_variance n<2" (fun () -> S.Descriptive.sample_variance [| 1. |]);
  expect_invalid "quantile p" (fun () -> S.Descriptive.quantile [| 1.; 2. |] 1.5);
  expect_invalid "ecdf empty" (fun () -> S.Ecdf.of_sample [||]);
  expect_invalid "ecdf quantile p" (fun () ->
      S.Ecdf.quantile (S.Ecdf.of_sample [| 1.; 2. |]) (-0.1));
  expect_invalid "histogram bins" (fun () -> S.Histogram.create ~bins:0 [| 1. |]);
  expect_invalid "histogram empty" (fun () -> S.Histogram.create ~bins:4 [||]);
  expect_invalid "acf lag" (fun () -> S.Autocorrelation.acf [| 1.; 2.; 3. |] ~lag:3);
  expect_invalid "log_gamma 0" (fun () -> S.Special.log_gamma 0.);
  expect_invalid "gamma_p a=0" (fun () -> S.Special.gamma_p ~a:0. ~x:1.);
  expect_invalid "gamma_q x<0" (fun () -> S.Special.gamma_q ~a:1. ~x:(-1.));
  expect_invalid "normal_quantile 0" (fun () -> S.Special.normal_quantile 0.);
  expect_invalid "chi2 df=0" (fun () -> S.Special.chi_square_survival ~df:0 1.);
  expect_invalid "golden_section" (fun () ->
      S.Optimize.golden_section ~f:(fun x -> x) ~lo:1. ~hi:0. ());
  expect_invalid "nelder_mead empty" (fun () ->
      S.Optimize.nelder_mead ~f:(fun _ -> 0.) ~start:[||] ());
  expect_invalid "linear_fit lengths" (fun () -> S.Optimize.linear_fit [| 1.; 2. |] [| 1. |]);
  expect_invalid "uniform create" (fun () -> S.Distribution.Uniform.create ~lo:1. ~hi:0.);
  expect_invalid "normal sigma" (fun () -> S.Distribution.Normal.create ~mu:0. ~sigma:0.);
  expect_invalid "exponential rate" (fun () -> S.Distribution.Exponential.create ~rate:0.);
  expect_invalid "chi_square df" (fun () -> S.Distribution.Chi_square.create ~df:0);
  expect_invalid "gumbel beta" (fun () -> S.Distribution.Gumbel.create ~mu:0. ~beta:0.);
  expect_invalid "gumbel quantile" (fun () ->
      S.Distribution.Gumbel.quantile (S.Distribution.Gumbel.create ~mu:0. ~beta:1.) 1.);
  expect_invalid "gev sigma" (fun () ->
      S.Distribution.Gev.create ~mu:0. ~sigma:0. ~xi:0.1);
  expect_invalid "gpd sigma" (fun () -> S.Distribution.Gpd.create ~u:0. ~sigma:0. ~xi:0.1);
  expect_invalid "weibull scale" (fun () ->
      S.Distribution.Weibull.create ~scale:0. ~shape:1.);
  expect_invalid "betainc a=0" (fun () -> S.Special.betainc ~a:0. ~b:1. ~x:0.5);
  expect_invalid "betainc x>1" (fun () -> S.Special.betainc ~a:1. ~b:1. ~x:1.5);
  expect_invalid "t-survival df=0" (fun () -> S.Special.student_t_survival ~df:0. 1.);
  expect_invalid "welch n_a<2" (fun () -> S.Welch.t_test [| 1. |] [| 1.; 2. |]);
  expect_invalid "welch n_b<2" (fun () -> S.Welch.t_test [| 1.; 2. |] [||]);
  expect_invalid "welch alpha=0" (fun () ->
      S.Welch.t_test ~alpha:0. [| 1.; 2. |] [| 1.; 2. |]);
  expect_invalid "welch alpha=1" (fun () ->
      S.Welch.t_test ~alpha:1. [| 1.; 2. |] [| 1.; 2. |]);
  expect_invalid "cohens_d n<2" (fun () -> S.Effect_size.cohens_d [| 1. |] [| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* [summarize] bit-identity: the single-sort single-mean implementation
   must reproduce the retired multi-pass one bit for bit.  The reference
   below is a verbatim reimplementation of the pre-refactor code. *)

let old_quantile xs p =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let old_summarize xs =
  let n = Array.length xs in
  let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs) in
  let centered_moment xs k =
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** float_of_int k)) 0. xs
    /. float_of_int (Array.length xs)
  in
  let sample_std xs =
    sqrt (centered_moment xs 2 *. float_of_int n /. float_of_int (n - 1))
  in
  {
    S.Descriptive.n;
    mean = mean xs;
    std = (if n >= 2 then sample_std xs else 0.);
    minimum = Array.fold_left Float.min xs.(0) xs;
    maximum = Array.fold_left Float.max xs.(0) xs;
    median = old_quantile xs 0.5;
    q1 = old_quantile xs 0.25;
    q3 = old_quantile xs 0.75;
    cv = (if n >= 2 && mean xs <> 0. then sample_std xs /. mean xs else 0.);
  }

let same_bits what a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" what a b

let check_summary_identical xs =
  let o = old_summarize xs and s = S.Descriptive.summarize xs in
  Alcotest.(check int) "n" o.S.Descriptive.n s.S.Descriptive.n;
  same_bits "mean" o.S.Descriptive.mean s.S.Descriptive.mean;
  same_bits "std" o.S.Descriptive.std s.S.Descriptive.std;
  same_bits "min" o.S.Descriptive.minimum s.S.Descriptive.minimum;
  same_bits "max" o.S.Descriptive.maximum s.S.Descriptive.maximum;
  same_bits "median" o.S.Descriptive.median s.S.Descriptive.median;
  same_bits "q1" o.S.Descriptive.q1 s.S.Descriptive.q1;
  same_bits "q3" o.S.Descriptive.q3 s.S.Descriptive.q3;
  same_bits "cv" o.S.Descriptive.cv s.S.Descriptive.cv

let test_summarize_bit_identity () =
  check_summary_identical lb_vec;
  check_summary_identical ks_a;
  check_summary_identical [| 42. |];
  check_summary_identical [| 3.; 3.; 3.; 3. |];
  check_summary_identical [| -1.5; 0.; 2.5; -7.25; 1e9; 1e-9 |]

let test_summarize_bit_identity_random =
  qtest
    (QCheck.Test.make ~name:"summarize bit-identical to multi-pass reference" ~count:200
       QCheck.(list_of_size (Gen.int_range 2 64) (float_range (-1e6) 1e6))
       (fun l ->
         check_summary_identical (Array.of_list l);
         true))

let () =
  Alcotest.run "repro_stats"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "gamma_p exponential" `Quick test_gamma_p_exponential;
          test_gamma_p_q_complement;
          Alcotest.test_case "erf" `Quick test_erf_values;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf_values;
          test_normal_quantile_inverse;
          Alcotest.test_case "chi-square df=1" `Quick test_chi_square_df1;
          Alcotest.test_case "chi-square df=2" `Quick test_chi_square_df2;
          Alcotest.test_case "kolmogorov survival" `Quick test_kolmogorov_survival;
          Alcotest.test_case "betainc closed forms" `Quick test_betainc_closed_forms;
          test_betainc_symmetry;
          Alcotest.test_case "student-t df=1 (Cauchy)" `Quick test_student_t_survival_cauchy;
          Alcotest.test_case "student-t df=2" `Quick test_student_t_survival_df2;
          Alcotest.test_case "student-t limits" `Quick test_student_t_survival_limits;
        ] );
      ( "welch",
        [
          Alcotest.test_case "known value" `Quick test_welch_known_value;
          Alcotest.test_case "identical samples" `Quick test_welch_identical_samples;
          Alcotest.test_case "zero variance" `Quick test_welch_zero_variance;
          Alcotest.test_case "detects shift" `Quick test_welch_detects_shift;
          test_welch_symmetry;
          Alcotest.test_case "extreme variance df finite" `Quick
            test_welch_extreme_variance_df_finite;
          Alcotest.test_case "cohen's d" `Quick test_cohens_d;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "basics" `Quick test_descriptive_basics;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "symmetric skewness" `Quick test_skewness_symmetric;
          Alcotest.test_case "normal kurtosis" `Quick test_kurtosis_normal;
          test_summary_consistency;
        ] );
      ( "ecdf",
        [
          Alcotest.test_case "basics" `Quick test_ecdf_basics;
          Alcotest.test_case "ties" `Quick test_ecdf_ties;
          test_ecdf_monotone;
          Alcotest.test_case "ccdf points positive" `Quick test_ecdf_ccdf_points_positive;
        ] );
      ( "distributions",
        [
          test_normal_roundtrip;
          Alcotest.test_case "gumbel closed form" `Quick test_gumbel_closed_form;
          Alcotest.test_case "gumbel deep tail" `Quick test_gumbel_survival_tail;
          test_gumbel_roundtrip;
          Alcotest.test_case "gev gumbel limit" `Quick test_gev_gumbel_limit;
          test_gev_roundtrip;
          Alcotest.test_case "gev upper bound" `Quick test_gev_upper_bound;
          Alcotest.test_case "gpd exponential case" `Quick test_gpd_exponential_case;
          test_gpd_roundtrip;
          Alcotest.test_case "weibull closed form" `Quick test_weibull_closed_form;
          Alcotest.test_case "samplers match cdf" `Slow test_sampling_matches_cdf;
        ] );
      ( "independence",
        [
          Alcotest.test_case "white noise acf" `Quick test_acf_white_noise;
          Alcotest.test_case "ar1 acf" `Quick test_acf_of_ar1;
          Alcotest.test_case "acf_up_to length" `Quick test_acf_up_to_length;
          Alcotest.test_case "ljung-box under H0" `Slow test_ljung_box_white_noise;
          Alcotest.test_case "ljung-box rejects AR(1)" `Quick test_ljung_box_rejects_ar1;
          Alcotest.test_case "ljung-box p uniform" `Slow test_ljung_box_p_uniform;
        ] );
      ( "ks",
        [
          Alcotest.test_case "same distribution" `Quick test_ks_same_distribution;
          Alcotest.test_case "detects shift" `Quick test_ks_detects_shift;
          Alcotest.test_case "disjoint D=1" `Quick test_ks_statistic_disjoint;
          Alcotest.test_case "one-sample uniform" `Quick test_ks_one_sample_uniform;
          Alcotest.test_case "one-sample wrong model" `Quick test_ks_one_sample_wrong_model;
          Alcotest.test_case "split halves" `Quick test_split_halves;
          test_ks_symmetry;
        ] );
      ( "anderson-darling",
        [
          Alcotest.test_case "accepts true model" `Quick test_ad_accepts_true_model;
          Alcotest.test_case "rejects wrong model" `Quick test_ad_rejects_wrong_model;
          Alcotest.test_case "tail sensitivity" `Quick test_ad_more_tail_sensitive_than_ks;
          Alcotest.test_case "alpha validation" `Quick test_ad_alpha_validation;
          Alcotest.test_case "reference statistic" `Quick test_ad_statistic_reference;
        ] );
      ( "runs",
        [
          Alcotest.test_case "random series" `Quick test_runs_random_series;
          Alcotest.test_case "rejects trend" `Quick test_runs_rejects_trend;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          test_histogram_bounds_cover;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "golden section" `Quick test_golden_section_parabola;
          Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "nelder-mead barrier" `Quick test_nelder_mead_with_barrier;
          Alcotest.test_case "linear fit" `Quick test_linear_fit_recovers;
        ] );
      ( "golden",
        [
          Alcotest.test_case "ljung-box pinned" `Quick test_ljung_box_golden;
          Alcotest.test_case "ljung-box constant" `Quick test_ljung_box_constant;
          Alcotest.test_case "ks two-sample pinned" `Quick test_ks_two_sample_golden;
          Alcotest.test_case "ks ties & constant" `Quick test_ks_ties_and_constant;
          Alcotest.test_case "ks one-sample pinned" `Quick test_ks_one_sample_golden;
        ] );
      ( "guards",
        [ Alcotest.test_case "invalid inputs raise" `Quick test_guards_survive_noassert ] );
      ( "summarize",
        [
          Alcotest.test_case "bit-identity fixed vectors" `Quick test_summarize_bit_identity;
          test_summarize_bit_identity_random;
        ] );
    ]
