(* The [mbpta serve] daemon: admission control, dedup/coalescing,
   warm-vs-cold classification, warm-only queries, graceful shutdown —
   and the bit-identity contract across all serving paths.

   Servers run in-process (threads over a Unix socket in a temp dir);
   clients talk to them through the real wire protocol, so every byte
   crosses the same boundary the CLI uses. *)

module M = Repro_mbpta
module T = Repro_tvca
module P = Repro_platform
module S = Repro_serve
module Sp = S.Serve_protocol

let temp_dir () =
  let f = Filename.temp_file "serve_test" "" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_server ?(jobs = 2) ?(max_queue = 4) ?(max_clients = 16) ?on_job_start f =
  let dir = temp_dir () in
  let sock = Filename.concat dir "d.sock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg =
    {
      S.Server.socket_path = sock;
      store_dir = Filename.concat dir "store";
      jobs;
      max_queue;
      max_clients;
      trace = None;
    }
  in
  match S.Server.start ?on_job_start cfg with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok srv -> Fun.protect ~finally:(fun () -> S.Server.stop srv) (fun () -> f srv sock)

let request ?on_event sock req =
  match S.Client.request ?on_event ~socket_path:sock req with
  | Ok r -> r
  | Error e -> Alcotest.failf "client request: %s" e

(* Small but real campaign — distinct seeds per test keep store keys from
   colliding even though every test gets its own directory anyway. *)
let spec ~seed = { Sp.default_spec with runs = 120; seed; frames = 2; no_gates = true }

(* The sequential in-process reference: same measurement and analysis
   glue as the daemon (and the CLI), no store, [jobs = 1].  The daemon's
   reports must match this byte for byte on every serving path. *)
let direct_render (spec : Sp.spec) =
  let experiment config =
    T.Experiment.create ~frames:spec.frames ~config ~base_seed:spec.seed ()
  in
  let det = experiment P.Config.deterministic in
  let rand = experiment P.Config.mbpta_compliant in
  let measure e i = T.Experiment.measure e ~run_index:i in
  let input =
    {
      M.Campaign.runs = spec.runs;
      measure_det = measure det;
      measure_rand = measure rand;
      options = Sp.options spec;
      engineering_factor = spec.engineering_factor;
    }
  in
  match M.Campaign.run ~jobs:1 input with
  | Ok c -> M.Campaign.render c
  | Error f -> Alcotest.failf "direct campaign failed: %a" M.Protocol.pp_failure f

let counter counters name = List.assoc_opt name counters

(* ------------------------------------------------------------------ *)

let test_cold_warm_bit_identical () =
  let spec = spec ~seed:4101L in
  let reference = direct_render spec in
  with_server @@ fun _srv sock ->
  let events = ref 0 in
  (match
     request ~on_event:(fun _ -> incr events) sock (Sp.Campaign { spec; events = true })
   with
  | Sp.Report { served = Sp.Cold; report; counters; _ } ->
      Alcotest.(check string) "cold report equals sequential reference" reference report;
      (match counter counters "cache.runs_simulated" with
      | Some n when n > 0 -> ()
      | c -> Alcotest.failf "cold request should simulate (got %a)" Fmt.(option int) c);
      Alcotest.(check bool) "events streamed while computing" true (!events > 0)
  | r -> Alcotest.failf "expected a cold report, got %s" (Sp.response_to_line r));
  match request sock (Sp.Campaign { spec; events = false }) with
  | Sp.Report { served = Sp.Warm; report; counters; _ } ->
      Alcotest.(check string) "warm report bit-identical" reference report;
      Alcotest.(check (option int))
        "warm request simulates nothing" (Some 0)
        (counter counters "cache.runs_simulated")
  | r -> Alcotest.failf "expected a warm report, got %s" (Sp.response_to_line r)

let test_concurrent_coalesced () =
  let identical = spec ~seed:4102L in
  let distinct = spec ~seed:4103L in
  let reference = direct_render identical in
  let release = Atomic.make false in
  let hook _key = while not (Atomic.get release) do Thread.delay 0.005 done in
  with_server ~on_job_start:hook @@ fun srv sock ->
  let n = 3 in
  let results = Array.make (n + 1) None in
  let client i sp () =
    results.(i) <- Some (S.Client.request ~socket_path:sock (Sp.Campaign { spec = sp; events = false }))
  in
  let threads =
    List.init n (fun i -> Thread.create (client i identical) ())
    @ [ Thread.create (client n distinct) () ]
  in
  (* The hook stalls the first job, so the other identical requests must
     coalesce onto it (and the distinct one must not) before we let any
     campaign compute. *)
  let deadline = Unix.gettimeofday () +. 20. in
  let coalesced () =
    counter (M.Trace.Counters.snapshot (S.Server.counters srv)) "serve.dedup_coalesced"
  in
  while coalesced () <> Some (n - 1) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check (option int)) "identical requests coalesced" (Some (n - 1)) (coalesced ());
  Atomic.set release true;
  List.iter Thread.join threads;
  let served_of = function
    | Some (Ok (Sp.Report { served; report; _ })) ->
        Alcotest.(check string) "every waiter gets the reference bytes" reference report;
        served
    | Some (Ok r) -> Alcotest.failf "expected a report, got %s" (Sp.response_to_line r)
    | Some (Error e) -> Alcotest.failf "client failed: %s" e
    | None -> Alcotest.fail "client never completed"
  in
  let identical_served = List.init n (fun i -> served_of results.(i)) in
  Alcotest.(check int) "exactly one computed cold" 1
    (List.length (List.filter (fun s -> s = Sp.Cold) identical_served));
  Alcotest.(check int) "the rest coalesced" (n - 1)
    (List.length (List.filter (fun s -> s = Sp.Coalesced) identical_served));
  match results.(n) with
  | Some (Ok (Sp.Report { served = Sp.Cold; report; _ })) ->
      Alcotest.(check string) "distinct spec computed its own report"
        (direct_render distinct) report
  | _ -> Alcotest.fail "distinct spec should have computed cold"

let test_overload_rejected () =
  let blocked = spec ~seed:4104L in
  let refused = spec ~seed:4105L in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let hook _key =
    Atomic.set started true;
    while not (Atomic.get release) do Thread.delay 0.005 done
  in
  (* max_queue 0: one campaign may compute, nothing may wait. *)
  with_server ~max_queue:0 ~on_job_start:hook @@ fun _srv sock ->
  let first = ref None in
  let th =
    Thread.create
      (fun () ->
        first := Some (S.Client.request ~socket_path:sock (Sp.Campaign { spec = blocked; events = false })))
      ()
  in
  let deadline = Unix.gettimeofday () +. 20. in
  while (not (Atomic.get started)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  Alcotest.(check bool) "first campaign admitted" true (Atomic.get started);
  (* The daemon is saturated: a distinct campaign must be refused with a
     typed rejection immediately — not hang behind the blocked job. *)
  (match request sock (Sp.Campaign { spec = refused; events = false }) with
  | Sp.Rejected { reason; _ } ->
      Alcotest.(check string) "typed overload reason" Sp.reason_overloaded reason
  | r -> Alcotest.failf "expected overload rejection, got %s" (Sp.response_to_line r));
  Atomic.set release true;
  Thread.join th;
  match !first with
  | Some (Ok (Sp.Report { served = Sp.Cold; _ })) -> ()
  | _ -> Alcotest.fail "the admitted campaign should still complete cold"

let test_warm_queries () =
  let spec = spec ~seed:4106L in
  with_server @@ fun _srv sock ->
  (* Nothing recorded yet: warm-only queries must miss, never compute. *)
  (match request sock (Sp.Query { spec; query = Sp.Pwcet 1e-9 }) with
  | Sp.Miss _ -> ()
  | r -> Alcotest.failf "expected a miss on a cold store, got %s" (Sp.response_to_line r));
  (match request sock (Sp.Campaign { spec; events = false }) with
  | Sp.Report { served = Sp.Cold; _ } -> ()
  | r -> Alcotest.failf "expected a cold report, got %s" (Sp.response_to_line r));
  (match request sock (Sp.Query { spec; query = Sp.Pwcet 1e-9 }) with
  | Sp.Answer { value = M.Trace.Json.Float v; counters; _ } ->
      Alcotest.(check bool) "pWCET estimate is a positive finite float" true
        (Float.is_finite v && v > 0.);
      Alcotest.(check (option int))
        "warm query simulates nothing (counter-proved)" (Some 0)
        (counter counters "cache.runs_simulated")
  | r -> Alcotest.failf "expected a warm pWCET answer, got %s" (Sp.response_to_line r));
  match request sock (Sp.Query { spec; query = Sp.Iid_verdict }) with
  | Sp.Answer { value = M.Trace.Json.Obj fields; counters; _ } ->
      Alcotest.(check bool) "verdict carries accepted" true
        (match List.assoc_opt "accepted" fields with
        | Some (M.Trace.Json.Bool _) -> true
        | _ -> false);
      Alcotest.(check (option int))
        "i.i.d. query simulates nothing" (Some 0)
        (counter counters "cache.runs_simulated")
  | r -> Alcotest.failf "expected an i.i.d. answer, got %s" (Sp.response_to_line r)

let test_shutdown_drains () =
  let in_flight = spec ~seed:4107L in
  let queued = spec ~seed:4108L in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let hook _key =
    Atomic.set started true;
    while not (Atomic.get release) do Thread.delay 0.005 done
  in
  with_server ~max_queue:2 ~on_job_start:hook @@ fun srv sock ->
  let answers = Array.make 2 None in
  let submit i sp =
    Thread.create
      (fun () ->
        answers.(i) <- Some (S.Client.request ~socket_path:sock (Sp.Campaign { spec = sp; events = false })))
      ()
  in
  let t0 = submit 0 in_flight in
  let deadline = Unix.gettimeofday () +. 20. in
  while (not (Atomic.get started)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  let t1 = submit 1 queued in
  let requests () =
    counter (M.Trace.Counters.snapshot (S.Server.counters srv)) "serve.requests"
  in
  while requests () < Some 2 && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  (match request sock Sp.Shutdown with
  | Sp.Shutdown_ack -> ()
  | r -> Alcotest.failf "expected a shutdown ack, got %s" (Sp.response_to_line r));
  (* Release the in-flight campaign into the raised shutdown flag: it
     checkpoints at its first chunk barrier; the queued job is rejected
     without ever starting. *)
  Atomic.set release true;
  Thread.join t0;
  Thread.join t1;
  Array.iter
    (fun a ->
      match a with
      | Some (Ok (Sp.Rejected { reason; _ })) ->
          Alcotest.(check string) "typed shutdown rejection" Sp.reason_shutting_down
            reason
      | Some (Ok r) ->
          Alcotest.failf "expected shutdown rejection, got %s" (Sp.response_to_line r)
      | Some (Error e) -> Alcotest.failf "client failed: %s" e
      | None -> Alcotest.fail "client never completed")
    answers;
  S.Server.wait srv;
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists sock);
  match S.Client.request ~socket_path:sock Sp.Status with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a drained daemon must not answer"

let test_protocol_roundtrip () =
  let spec = { (spec ~seed:4109L) with seu_rate = 0.25; watchdog_budget = Some 90_000 } in
  let reqs =
    [
      Sp.Campaign { spec; events = true };
      Sp.Query { spec; query = Sp.Pwcet 1e-9 };
      Sp.Query { spec; query = Sp.Iid_verdict };
      Sp.Status;
      Sp.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Sp.request_of_line (Sp.request_to_line r) with
      | Ok r' ->
          Alcotest.(check string) "request round-trips" (Sp.request_to_line r)
            (Sp.request_to_line r')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    reqs;
  (* The store key must survive the wire: a spec parsed back from JSON
     addresses the same record (floats travel as %.17g). *)
  match Sp.request_of_line (Sp.request_to_line (Sp.Campaign { spec; events = false })) with
  | Ok (Sp.Campaign { spec = spec'; _ }) ->
      Alcotest.(check string) "store key stable across the wire" (Sp.store_key spec)
        (Sp.store_key spec')
  | _ -> Alcotest.fail "campaign request did not round-trip"

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [ Alcotest.test_case "request round-trip + key stability" `Quick
            test_protocol_roundtrip ] );
      ( "serving",
        [
          Alcotest.test_case "cold/warm bit-identical to sequential" `Quick
            test_cold_warm_bit_identical;
          Alcotest.test_case "concurrent identical requests coalesce" `Quick
            test_concurrent_coalesced;
          Alcotest.test_case "warm-only queries" `Quick test_warm_queries;
        ] );
      ( "admission",
        [ Alcotest.test_case "overload gets a typed rejection" `Quick
            test_overload_rejected ] );
      ( "shutdown",
        [ Alcotest.test_case "drain rejects queued, checkpoints in-flight" `Quick
            test_shutdown_drains ] );
    ]
