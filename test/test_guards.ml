(* Input-validation guard tests.

   Every guard exercised here was once an [assert] — which vanishes under
   the [-noassert] release profile, silently admitting the invalid input.
   The guards are now unconditional [Invalid_argument] raises; this suite
   runs in both build profiles (CI runs it under [-noassert] explicitly),
   so a regression back to [assert] fails the release build, not just the
   dev one. *)

module Stats = Repro_stats
module Evt = Repro_evt
module P = Repro_platform
module T = Repro_tvca
module W = Repro_workloads
module M = Repro_mbpta
module Prng = Repro_rng.Prng
module Quality = Repro_rng.Quality

let expect_invalid_arg name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" name
  | exception Invalid_argument _ -> ()

let guard name f = Alcotest.test_case name `Quick (fun () -> expect_invalid_arg name f)

let prng () = Prng.create 42L

(* ------------------------------------------------------------------ *)
(* rng *)

let rng_guards =
  [
    guard "Prng.int_below rejects n = 0" (fun () -> Prng.int_below (prng ()) 0);
    guard "Prng.int_in_range rejects empty range" (fun () ->
        Prng.int_in_range (prng ()) ~lo:3 ~hi:2);
    guard "Quality.chi_square_uniformity rejects 1 bucket" (fun () ->
        Quality.chi_square_uniformity ~buckets:1 (prng ()) ~draws:1000);
    guard "Quality.chi_square_uniformity rejects sparse draws" (fun () ->
        Quality.chi_square_uniformity ~buckets:64 (prng ()) ~draws:100);
    guard "Quality.runs rejects < 20 draws" (fun () -> Quality.runs (prng ()) ~draws:5);
    guard "Quality.serial_correlation rejects lag = 0" (fun () ->
        Quality.serial_correlation ~lag:0 (prng ()) ~draws:100);
    guard "Quality.serial_correlation rejects draws <= lag + 2" (fun () ->
        Quality.serial_correlation ~lag:10 (prng ()) ~draws:12);
    guard "Quality.block_frequency rejects unaligned block_bits" (fun () ->
        Quality.block_frequency ~block_bits:33 (prng ()) ~draws:10_000);
    guard "Quality.block_frequency rejects too few blocks" (fun () ->
        Quality.block_frequency ~block_bits:128 (prng ()) ~draws:8);
    guard "Quality.gap rejects < 2000 draws" (fun () -> Quality.gap (prng ()) ~draws:100);
  ]

(* ------------------------------------------------------------------ *)
(* stats: Welch comparator + special functions (timing-leak machinery) *)

let stats_guards =
  [
    guard "Special.betainc rejects a <= 0" (fun () ->
        Stats.Special.betainc ~a:0. ~b:1. ~x:0.5);
    guard "Special.betainc rejects x outside [0, 1]" (fun () ->
        Stats.Special.betainc ~a:1. ~b:1. ~x:(-0.1));
    guard "Special.student_t_survival rejects df <= 0" (fun () ->
        Stats.Special.student_t_survival ~df:0. 1.);
    guard "Welch.t_test rejects a singleton sample" (fun () ->
        Stats.Welch.t_test [| 1. |] [| 1.; 2. |]);
    guard "Welch.t_test rejects an empty sample" (fun () ->
        Stats.Welch.t_test [| 1.; 2. |] [||]);
    guard "Welch.t_test rejects alpha outside (0, 1)" (fun () ->
        Stats.Welch.t_test ~alpha:1. [| 1.; 2. |] [| 3.; 4. |]);
    guard "Effect_size.cohens_d rejects a singleton sample" (fun () ->
        Stats.Effect_size.cohens_d [| 1. |] [| 1.; 2. |]);
  ]

(* ------------------------------------------------------------------ *)
(* evt *)

let sample n = Array.init n (fun i -> 100. +. float_of_int ((i * 7919) mod 97))

let pwcet_curve () =
  Evt.Pwcet.create
    ~model:(Evt.Pwcet.Gumbel_tail (Stats.Distribution.Gumbel.create ~mu:150. ~beta:5.))
    ~block_size:10 ~sample:(sample 100)

let evt_guards =
  [
    guard "Convergence.study rejects sample below min_runs" (fun () ->
        Evt.Convergence.study ~min_runs:100 (sample 50));
    guard "Convergence.study rejects step = 0" (fun () ->
        Evt.Convergence.study ~step:0 (sample 500));
    guard "Convergence.study rejects stable_steps = 0" (fun () ->
        Evt.Convergence.study ~stable_steps:0 (sample 500));
    guard "Gumbel_fit.fit rejects a singleton" (fun () ->
        Evt.Gumbel_fit.fit [| 1. |]);
    guard "Gumbel_fit.fit (MLE) rejects a singleton" (fun () ->
        Evt.Gumbel_fit.fit ~method_:Evt.Gumbel_fit.Mle [| 1. |]);
    guard "Gev_fit.fit rejects < 4 maxima" (fun () -> Evt.Gev_fit.fit (sample 3));
    guard "Gpd_fit.fit rejects negative excesses" (fun () ->
        Evt.Gpd_fit.fit ~threshold:0. [| 1.; -2.; 3.; 4. |]);
    guard "Gpd_fit.fit (PWM) rejects < 4 excesses" (fun () ->
        Evt.Gpd_fit.fit ~threshold:0. [| 1.; 2. |]);
    guard "Pot.analyze rejects quantile outside (0, 1)" (fun () ->
        Evt.Gpd_fit.Pot.analyze ~quantile:1.5 (sample 200));
    guard "Pot.quantile_of_exceedance rejects p beyond the exceedance rate" (fun () ->
        let t = Evt.Gpd_fit.Pot.analyze (sample 200) in
        Evt.Gpd_fit.Pot.quantile_of_exceedance t 0.9);
    guard "Bootstrap.pwcet_interval rejects < 20 replicates" (fun () ->
        Evt.Bootstrap.pwcet_interval ~replicates:5 ~prng:(prng ()) ~sample:(sample 100)
          ~cutoff_probability:1e-9 ());
    guard "Bootstrap.pwcet_interval rejects confidence outside (0, 1)" (fun () ->
        Evt.Bootstrap.pwcet_interval ~confidence:1.5 ~prng:(prng ()) ~sample:(sample 100)
          ~cutoff_probability:1e-9 ());
    guard "Bootstrap.pwcet_interval rejects < 60 observations" (fun () ->
        Evt.Bootstrap.pwcet_interval ~prng:(prng ()) ~sample:(sample 30)
          ~cutoff_probability:1e-9 ());
    guard "Pwcet.ccdf_series rejects decades_below = 0" (fun () ->
        Evt.Pwcet.ccdf_series (pwcet_curve ()) ~decades_below:0);
  ]

(* ------------------------------------------------------------------ *)
(* platform *)

let platform_guards =
  [
    guard "Bus.create rejects contention probability outside [0, 1]" (fun () ->
        P.Bus.create ~latencies:P.Config.default_latencies ~contenders:[ 1.5 ]);
    guard "Dram.create rejects banks = 0" (fun () ->
        P.Dram.create ~mode:P.Config.Open_page ~banks:0 ~row_bytes:1024
          ~latencies:P.Config.default_latencies);
    guard "Dram.create rejects row_bytes = 0" (fun () ->
        P.Dram.create ~mode:P.Config.Open_page ~banks:4 ~row_bytes:0
          ~latencies:P.Config.default_latencies);
    guard "Core_sim.advance rejects negative cycles" (fun () ->
        let core =
          P.Core_sim.create ~config:P.Config.deterministic ~seed:1L ()
        in
        P.Core_sim.advance core (-1));
  ]

(* ------------------------------------------------------------------ *)
(* tvca *)

let tvca_guards =
  [
    guard "Controller.sensor_channel rejects a wrong-length window" (fun () ->
        T.Controller.sensor_channel T.Controller.default_gains [| 0.; 1. |]);
    guard "Controller.control_axis rejects a negative frame" (fun () ->
        T.Controller.control_axis T.Controller.default_gains
          (T.Controller.fresh_state ()) ~axis:`X ~frame:(-1) ~reference:0.);
    guard "Controller.control_axis rejects frame >= history_length" (fun () ->
        T.Controller.control_axis T.Controller.default_gains
          (T.Controller.fresh_state ()) ~axis:`Y ~frame:T.Controller.history_length
          ~reference:0.);
    guard "Mission.generate rejects frames = 0" (fun () ->
        T.Mission.generate ~frames:0 ~seed:1L ());
    guard "Mission.generate rejects frames beyond the history ring" (fun () ->
        T.Mission.generate ~frames:(T.Controller.history_length + 1) ~seed:1L ());
    guard "Codegen.program rejects frames = 0" (fun () ->
        T.Codegen.program ~frames:0 ());
    guard "Rtos.apply_policy rejects negative max_jitter" (fun () ->
        T.Rtos.apply_policy T.Rtos.Offset_jitter ~seed:1L ~max_jitter:(-1)
          (T.Rtos.tvca_tasks ~period:60_000 ()));
    guard "Rtos.randomization_of_signatures rejects an empty campaign" (fun () ->
        T.Rtos.randomization_of_signatures []);
  ]

(* ------------------------------------------------------------------ *)
(* workloads *)

let workload_guards =
  [
    guard "Kernels.bubble_sort rejects n = 1" (fun () -> W.Kernels.bubble_sort ~n:1 ());
    guard "Kernels.binary_search rejects lookups = 0" (fun () ->
        W.Kernels.binary_search ~lookups:0 ());
    guard "Kernels.matrix_multiply rejects n = 1" (fun () ->
        W.Kernels.matrix_multiply ~n:1 ());
    guard "Kernels.fir_filter rejects taps = 0" (fun () ->
        W.Kernels.fir_filter ~taps:0 ());
    guard "Kernels.fir_filter rejects n <= taps" (fun () ->
        W.Kernels.fir_filter ~taps:16 ~n:10 ());
    guard "Kernels.newton_roots rejects iterations = 0" (fun () ->
        W.Kernels.newton_roots ~iterations:0 ());
    guard "Kernels.histogram rejects bins = 1" (fun () ->
        W.Kernels.histogram ~bins:1 ());
  ]

(* ------------------------------------------------------------------ *)
(* core *)

let core_guards =
  [
    guard "Mbta.bound rejects an empty sample" (fun () -> M.Mbta.bound [||]);
    guard "Mbta.bound rejects engineering_factor < 1" (fun () ->
        M.Mbta.bound ~engineering_factor:0.5 (sample 10));
    guard "Path_analysis.analyze rejects mismatched arrays" (fun () ->
        M.Path_analysis.analyze ~measurements:(sample 3) ~signatures:[| 1 |] ());
    guard "Path_analysis.analyze rejects empty input" (fun () ->
        M.Path_analysis.analyze ~measurements:[||] ~signatures:[||] ());
    guard "Schedulability.required_cutoff rejects zero activation rate" (fun () ->
        M.Schedulability.required_cutoff ~activations_per_hour:0.
          ~target_failures_per_hour:1e-9);
    guard "Ascii_plot.qq_plot rejects a singleton" (fun () ->
        M.Ascii_plot.qq_plot ~data:[| 1. |] ~quantile:(fun p -> p) ());
    guard "Ascii_plot.exceedance_plot rejects width < 20" (fun () ->
        M.Ascii_plot.exceedance_plot ~width:10 (pwcet_curve ()));
    guard "Parallel.init_checkpointed rejects chunk_size = 0" (fun () ->
        M.Parallel.init_checkpointed ~chunk_size:0
          ~lookup:(fun ~lo:_ ~len:_ -> None)
          ~persist:(fun ~lo:_ _ -> ())
          4 float_of_int);
  ]

let () =
  Alcotest.run "guards"
    [
      ("rng", rng_guards);
      ("stats", stats_guards);
      ("evt", evt_guards);
      ("platform", platform_guards);
      ("tvca", tvca_guards);
      ("workloads", workload_guards);
      ("core", core_guards);
    ]
