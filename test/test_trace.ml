(* Tests for the observability layer (Trace): JSONL schema round-trips,
   counter registry semantics, and the determinism contract — a traced
   campaign produces bit-identical results to an untraced one, and the
   default-level trace file itself is byte-identical at every job count. *)

module M = Repro_mbpta
module Trace = M.Trace

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

let temp_path () =
  let path = Filename.temp_file "test_trace" ".jsonl" in
  Sys.remove path;
  path

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Event serialization *)

let all_events =
  [
    Trace.Meta { schema = "trace/v1"; level = "runs" };
    Trace.Config [ ("seed", "2017"); ("tail", "gumbel") ];
    Trace.Config [];
    Trace.Campaign_start { runs = 3000; resilient = false };
    Trace.Campaign_end { ok = true; failure = None };
    Trace.Campaign_end { ok = false; failure = Some "i.i.d. rejected" };
    Trace.Phase_start { phase = "collect_rand" };
    Trace.Phase_end { phase = "collect_rand"; wall_ns = None };
    Trace.Phase_end { phase = "collect_rand"; wall_ns = Some 123_456_789 };
    Trace.Run
      { phase = "collect_det"; run_index = 0; attempts = 1; outcome = "completed";
        latency = Some 220150.;
      };
    Trace.Run
      { phase = "collect_det"; run_index = 7; attempts = 3; outcome = "crashed";
        latency = None;
      };
    Trace.Fault
      { phase = "collect_rand"; run_index = 5; attempt = 1; kind = "timeout";
        detail = "watchdog fired at 400000 cycles (budget 300000)";
      };
    Trace.Chunk { phase = "collect_det"; chunk_index = 2; lo = 1500; len = 750 };
    Trace.Iid_result
      { lb_stat = 25.386; lb_p = 0.1871; ks_stat = 0.14; ks_p = 0.6779; accepted = true };
    Trace.Convergence { converged = true; runs_used = 2400 };
    Trace.Evt_fit
      {
        tail = "gumbel";
        block_size = 32;
        params = [ ("mu", 222600.25); ("beta", 2214.0) ];
        gof_ks_p = 0.6811;
        gof_ad_stat = 0.793;
      };
    Trace.Counter { name = "rand.cycles"; value = 22218998 };
    Trace.Note "hello \"quoted\" \\ backslash\nnewline\ttab";
  ]

let test_round_trip () =
  List.iter
    (fun e ->
      let line = Trace.to_line e in
      match Trace.of_line line with
      | Error msg -> Alcotest.failf "of_line failed on %s: %s" line msg
      | Ok e' ->
          if e <> e' then Alcotest.failf "round-trip changed event: %s" line)
    all_events

let test_round_trip_special_floats () =
  (* Non-finite latencies serialize to null and come back as None. *)
  let e =
    Trace.Run
      { phase = "p"; run_index = 0; attempts = 1; outcome = "completed";
        latency = Some Float.nan;
      }
  in
  (match Trace.of_line (Trace.to_line e) with
  | Ok (Trace.Run { latency = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "NaN latency should parse back as None"
  | Error msg -> Alcotest.fail msg);
  (* Exact float round-trip, including awkward values. *)
  List.iter
    (fun x ->
      let e =
        Trace.Run
          { phase = "p"; run_index = 0; attempts = 1; outcome = "ok"; latency = Some x }
      in
      match Trace.of_line (Trace.to_line e) with
      | Ok (Trace.Run { latency = Some y; _ }) ->
          if Int64.bits_of_float x <> Int64.bits_of_float y then
            Alcotest.failf "float %h did not round-trip (got %h)" x y
      | Ok _ -> Alcotest.fail "wrong event shape"
      | Error msg -> Alcotest.fail msg)
    [ 0.; -0.; 1.5; 0.1; 1e-300; 1.7976931348623157e308; 220150.; 3.7798198192164671e-09 ]

let test_of_line_rejects_garbage () =
  List.iter
    (fun s ->
      match Trace.of_line s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_line accepted %S" s)
    [ ""; "not json"; "{}"; "{\"kind\":\"nope\"}"; "[1,2,3]"; "{\"kind\":\"run\"}" ]

let test_level_strings () =
  List.iter
    (fun l ->
      match Trace.level_of_string (Trace.level_to_string l) with
      | Ok l' -> checkb "level round-trip" true (l = l')
      | Error msg -> Alcotest.fail msg)
    [ Trace.Summary; Trace.Runs; Trace.Debug ];
  match Trace.level_of_string "verbose" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus level accepted"

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters () =
  let c = Trace.Counters.create () in
  Trace.Counters.add c "b.cycles" 10;
  Trace.Counters.incr c "a.runs";
  Trace.Counters.add c "b.cycles" 32;
  Trace.Counters.incr c "a.runs";
  Alcotest.(check (list (pair string int)))
    "snapshot sorted by name"
    [ ("a.runs", 2); ("b.cycles", 42) ]
    (Trace.Counters.snapshot c)

let test_counters_cross_domain () =
  let c = Trace.Counters.create () in
  let worker lo =
    Domain.spawn (fun () ->
        for i = lo to lo + 999 do
          Trace.Counters.add c "sum" i
        done)
  in
  let d1 = worker 0 and d2 = worker 1000 in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check (list (pair string int)))
    "commutative total" [ ("sum", 1999000) ] (Trace.Counters.snapshot c)

(* Per-request scoping: the daemon hands every request its own registry,
   parented on the process total.  Additions must stay isolated between
   siblings while rolling up into the parent — and a parentless registry
   (the back-compat process-total view) must behave exactly as before. *)
let test_counters_scoped () =
  let total = Trace.Counters.create () in
  let req_a = Trace.Counters.create ~parent:total () in
  let req_b = Trace.Counters.create ~parent:total () in
  Trace.Counters.add req_a "rand.cycles" 100;
  Trace.Counters.incr req_a "cache.runs_simulated";
  Trace.Counters.add req_b "rand.cycles" 7;
  Alcotest.(check (list (pair string int)))
    "request A sees only its own additions"
    [ ("cache.runs_simulated", 1); ("rand.cycles", 100) ]
    (Trace.Counters.snapshot req_a);
  Alcotest.(check (list (pair string int)))
    "request B isolated from A"
    [ ("rand.cycles", 7) ]
    (Trace.Counters.snapshot req_b);
  Alcotest.(check (list (pair string int)))
    "process total rolls both up"
    [ ("cache.runs_simulated", 1); ("rand.cycles", 107) ]
    (Trace.Counters.snapshot total);
  (* totals may also be written directly (daemon-level serve.* counters)
     without touching any request's view *)
  Trace.Counters.incr total "serve.requests";
  Alcotest.(check (option int))
    "parent-only counter invisible to children" None
    (List.assoc_opt "serve.requests" (Trace.Counters.snapshot req_a))

(* In-memory traces (the daemon's per-request kind): events stream to the
   [on_event] hook as they are emitted, [drain] returns them in order,
   and nothing touches the filesystem. *)
let test_mem_trace_stream_and_drain () =
  let streamed = ref [] in
  let t =
    Trace.create_mem ~level:Trace.Runs ~on_event:(fun e -> streamed := e :: !streamed) ()
  in
  Trace.phase_start t "collect_rand";
  Trace.emit_sample t ~phase:"collect_rand" [| 1.5; 2.5 |];
  Trace.phase_end t "collect_rand";
  Trace.flush t;
  let drained = Trace.drain t in
  Alcotest.(check bool) "drain keeps the meta header" true
    (match drained with Trace.Meta _ :: _ -> true | _ -> false);
  Alcotest.(check int) "all events drained (meta + 4)" 5 (List.length drained);
  Alcotest.(check int) "hook saw every emitted event" 4 (List.length !streamed);
  Alcotest.(check bool) "hook preserves emission order" true
    (match List.rev !streamed with
    | Trace.Phase_start _ :: _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* File round-trip *)

let test_file_round_trip () =
  let path = temp_path () in
  let t = Trace.create ~path () in
  Trace.emit t (Trace.Config [ ("seed", "7") ]);
  Trace.phase_start t "collect_det";
  Trace.emit_sample t ~phase:"collect_det" [| 100.; 200.; 300. |];
  Trace.phase_end t "collect_det";
  Trace.Counters.add (Trace.counters t) "det.cycles" 600;
  Trace.close t;
  (match Trace.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      (match events with
      | Trace.Meta { schema; _ } :: _ -> checks "schema" "trace/v1" schema
      | _ -> Alcotest.fail "first event must be Meta");
      checki "run events" 3
        (List.length
           (List.filter (function Trace.Run _ -> true | _ -> false) events));
      checkb "counter flushed" true
        (List.exists
           (function
             | Trace.Counter { name = "det.cycles"; value = 600 } -> true
             | _ -> false)
           events));
  Sys.remove path

let test_level_filtering () =
  (* Summary level drops Run events; Chunk events only appear at Debug. *)
  let at level =
    let path = temp_path () in
    let t = Trace.create ~level ~path () in
    Trace.emit_sample t ~phase:"p" [| 1.; 2. |];
    Trace.emit t (Trace.Chunk { phase = "p"; chunk_index = 0; lo = 0; len = 2 });
    Trace.close t;
    let events = match Trace.read_file path with Ok es -> es | Error m -> failwith m in
    Sys.remove path;
    let count p = List.length (List.filter p events) in
    ( count (function Trace.Run _ -> true | _ -> false),
      count (function Trace.Chunk _ -> true | _ -> false) )
  in
  Alcotest.(check (pair int int)) "summary" (0, 0) (at Trace.Summary);
  Alcotest.(check (pair int int)) "runs" (2, 0) (at Trace.Runs);
  Alcotest.(check (pair int int)) "debug" (2, 1) (at Trace.Debug)

(* ------------------------------------------------------------------ *)
(* Determinism contract on a synthetic campaign.  The measure functions
   are pure in the run index (the same contract the real experiment
   provides), so the campaign is deterministic by construction; these
   tests check that attaching a trace observes without perturbing, and
   that the default-level trace is byte-identical across job counts. *)

let synth_measure salt i =
  (* Spread deterministically; strictly positive so validation passes. *)
  let h = Hashtbl.hash (salt, i) in
  1000. +. float_of_int (h land 0xFFF)

let synth_input ~runs =
  {
    (M.Campaign.default_input ~measure_det:(synth_measure 1) ~measure_rand:(synth_measure 2))
    with
    M.Campaign.runs;
    M.Campaign.options =
      {
        M.Protocol.default_options with
        M.Protocol.gate_on_iid = false;
        M.Protocol.check_convergence = false;
      };
  }

let samples_of = function
  | Ok c -> (c.M.Campaign.det_sample, c.M.Campaign.rand_sample)
  | Error f -> Format.kasprintf failwith "campaign failed: %a" M.Protocol.pp_failure f

let test_traced_equals_untraced () =
  let input = synth_input ~runs:128 in
  let plain = samples_of (M.Campaign.run ~jobs:2 input) in
  let path = temp_path () in
  let t = Trace.create ~path () in
  let traced = samples_of (M.Campaign.run ~jobs:2 ~trace:t input) in
  Trace.close t;
  Sys.remove path;
  checkb "samples bit-identical with tracing on" true (plain = traced)

let test_trace_identical_across_jobs () =
  let input = synth_input ~runs:128 in
  let trace_with jobs =
    let path = temp_path () in
    let t = Trace.create ~path () in
    let samples = samples_of (M.Campaign.run ~jobs ~trace:t input) in
    Trace.close t;
    let contents = read_all path in
    Sys.remove path;
    (samples, contents)
  in
  let s1, c1 = trace_with 1 in
  let s4, c4 = trace_with 4 in
  checkb "samples identical" true (s1 = s4);
  checks "trace files byte-identical at jobs 1 vs 4" c1 c4

let test_trace_records_campaign () =
  let input = synth_input ~runs:128 in
  let path = temp_path () in
  let t = Trace.create ~path () in
  ignore (samples_of (M.Campaign.run ~jobs:2 ~trace:t input));
  Trace.close t;
  let events = match Trace.read_file path with Ok es -> es | Error m -> failwith m in
  Sys.remove path;
  let runs =
    List.filter (function Trace.Run { phase = "collect_det"; _ } -> true | _ -> false) events
  in
  checki "one Run event per det run" 128 (List.length runs);
  (* Canonical order: run_index strictly increasing within the phase. *)
  let indices =
    List.filter_map
      (function Trace.Run { phase = "collect_det"; run_index; _ } -> Some run_index | _ -> None)
      events
  in
  checkb "canonically ordered" true (indices = List.init 128 Fun.id);
  checkb "campaign end ok" true
    (List.exists (function Trace.Campaign_end { ok = true; _ } -> true | _ -> false) events);
  checkb "evt fit recorded" true
    (List.exists (function Trace.Evt_fit _ -> true | _ -> false) events)

(* ------------------------------------------------------------------ *)
(* Monotonic phase timing: the phase clock is injectable; durations are
   exact deltas of it, and clamped at zero if the clock ever steps
   backwards (the wall-clock regression this replaced — an NTP step could
   produce negative phase durations in the trace). *)

let mock_clock values =
  let remaining = ref values in
  fun () ->
    match !remaining with
    | [] -> Alcotest.fail "mock clock exhausted"
    | v :: rest ->
        remaining := rest;
        v

let phase_end_durations events =
  List.filter_map
    (function Trace.Phase_end { wall_ns; _ } -> Some wall_ns | _ -> None)
    events

let test_phase_duration_from_injected_clock () =
  let t = Trace.create_mem ~level:Trace.Debug ~clock:(mock_clock [ 1_000L; 3_500L ]) () in
  Trace.phase_start t "analysis";
  Trace.phase_end t "analysis";
  match phase_end_durations (Trace.drain t) with
  | [ Some d ] -> checki "wall_ns = clock delta" 2_500 d
  | _ -> Alcotest.fail "expected exactly one timed phase_end"

let test_phase_duration_clamped_on_backwards_step () =
  let t = Trace.create_mem ~level:Trace.Debug ~clock:(mock_clock [ 5_000L; 1_000L ]) () in
  Trace.phase_start t "analysis";
  Trace.phase_end t "analysis";
  match phase_end_durations (Trace.drain t) with
  | [ Some d ] -> checki "duration clamped, never negative" 0 d
  | _ -> Alcotest.fail "expected exactly one timed phase_end"

let test_phase_duration_only_at_debug () =
  (* Below Debug only the start timestamp is read; no duration is emitted. *)
  let t = Trace.create_mem ~level:Trace.Runs ~clock:(mock_clock [ 1_000L ]) () in
  Trace.phase_start t "analysis";
  Trace.phase_end t "analysis";
  match phase_end_durations (Trace.drain t) with
  | [ None ] -> ()
  | _ -> Alcotest.fail "expected an untimed phase_end below Debug"

let () =
  Alcotest.run "trace"
    [
      ( "schema",
        [
          Alcotest.test_case "event round-trip" `Quick test_round_trip;
          Alcotest.test_case "special floats" `Quick test_round_trip_special_floats;
          Alcotest.test_case "rejects garbage" `Quick test_of_line_rejects_garbage;
          Alcotest.test_case "level strings" `Quick test_level_strings;
        ] );
      ( "counters",
        [
          Alcotest.test_case "accumulate & sort" `Quick test_counters;
          Alcotest.test_case "cross-domain totals" `Quick test_counters_cross_domain;
          Alcotest.test_case "per-request scoping" `Quick test_counters_scoped;
          Alcotest.test_case "in-memory stream & drain" `Quick
            test_mem_trace_stream_and_drain;
        ] );
      ( "file",
        [
          Alcotest.test_case "write/read round-trip" `Quick test_file_round_trip;
          Alcotest.test_case "level filtering" `Quick test_level_filtering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "traced = untraced" `Quick test_traced_equals_untraced;
          Alcotest.test_case "jobs-invariant trace" `Quick test_trace_identical_across_jobs;
          Alcotest.test_case "campaign events" `Quick test_trace_records_campaign;
        ] );
      ( "clock",
        [
          Alcotest.test_case "duration = injected clock delta" `Quick
            test_phase_duration_from_injected_clock;
          Alcotest.test_case "backwards step clamps to 0" `Quick
            test_phase_duration_clamped_on_backwards_step;
          Alcotest.test_case "untimed below Debug" `Quick test_phase_duration_only_at_debug;
        ] );
    ]
