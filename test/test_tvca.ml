(* Tests for repro_tvca: plant dynamics, the golden controller, the
   generated-code <-> golden functional equivalence (the central property:
   the ISA program must compute bit-identical commands), mission generation
   and the measurement harness. *)

module P = Repro_platform
module T = Repro_tvca
module Dynamics = T.Dynamics
module Controller = T.Controller
module Codegen = T.Codegen
module Mission = T.Mission
module Experiment = T.Experiment

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf tol = Alcotest.check (Alcotest.float tol)
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Dynamics *)

let test_equilibrium_is_fixed_point () =
  (* no command, no disturbance, zero state: stays at rest *)
  let s = Dynamics.initial ~theta:0. ~omega:0. in
  let s' = Dynamics.step Dynamics.default_params ~dt:0.01 ~u:0. ~disturbance:0. s in
  checkf 1e-12 "theta" 0. s'.Dynamics.theta;
  checkf 1e-12 "omega" 0. s'.Dynamics.omega

let test_damped_system_decays () =
  let s0 = Dynamics.initial ~theta:0.5 ~omega:0. in
  let traj =
    Dynamics.simulate Dynamics.default_params ~dt:0.01 ~steps:2000
      ~u:(fun _ -> 0.)
      ~disturbance:(fun _ -> 0.)
      s0
  in
  let final = traj.(2000) in
  checkb "decays to rest" true
    (Float.abs final.Dynamics.theta < 0.01 && Float.abs final.Dynamics.omega < 0.01)

let test_constant_command_steady_state () =
  (* theta_ss = G u / k *)
  let p = Dynamics.default_params in
  let s0 = Dynamics.initial ~theta:0. ~omega:0. in
  let traj =
    Dynamics.simulate p ~dt:0.01 ~steps:3000 ~u:(fun _ -> 0.2) ~disturbance:(fun _ -> 0.) s0
  in
  let expected = p.Dynamics.actuator_gain *. 0.2 /. p.Dynamics.stiffness in
  checkf 1e-3 "steady state" expected traj.(3000).Dynamics.theta

let test_rk4_step_size_consistency () =
  (* one big step vs two half steps agree to O(dt^5) *)
  let p = Dynamics.default_params in
  let s0 = Dynamics.initial ~theta:0.3 ~omega:(-0.2) in
  let one = Dynamics.step p ~dt:0.02 ~u:0.1 ~disturbance:0.05 s0 in
  let half = Dynamics.step p ~dt:0.01 ~u:0.1 ~disturbance:0.05 s0 in
  let two = Dynamics.step p ~dt:0.01 ~u:0.1 ~disturbance:0.05 half in
  checkf 1e-7 "rk4 convergence" one.Dynamics.theta two.Dynamics.theta

let test_angular_acceleration_sign () =
  let p = Dynamics.default_params in
  let s = Dynamics.initial ~theta:1.0 ~omega:0. in
  (* restoring stiffness pulls a deflected nozzle back *)
  checkb "restoring" true (Dynamics.angular_acceleration p ~u:0. ~disturbance:0. s < 0.)

(* ------------------------------------------------------------------ *)
(* Controller (golden) *)

let gains = Controller.default_gains

let test_clamp () =
  checkf 0. "inside" 0.3 (Controller.clamp ~limit:1. 0.3);
  checkf 0. "above" 1. (Controller.clamp ~limit:1. 5.);
  checkf 0. "below" (-1.) (Controller.clamp ~limit:1. (-5.));
  checkf 0. "at limit" 1. (Controller.clamp ~limit:1. 1.)

let test_fir_taps_normalized () =
  let sum = Array.fold_left ( +. ) 0. Controller.fir_taps in
  checkf 1e-9 "taps sum to 1" 1. sum

let test_sensor_channel_constant_input () =
  (* constant input passes rejection untouched; FIR of a constant = constant *)
  let samples = Array.make (Array.length Controller.fir_taps) 0.7 in
  checkf 1e-12 "constant filtered" 0.7 (Controller.sensor_channel gains samples)

let test_sensor_channel_rejects_spike () =
  let n = Array.length Controller.fir_taps in
  let clean = Array.make n 0.5 in
  let spiked = Array.copy clean in
  spiked.(4) <- 0.5 +. (3. *. gains.Controller.jump_threshold);
  checkf 1e-12 "spike removed" (Controller.sensor_channel gains clean)
    (Controller.sensor_channel gains spiked)

let test_sensor_channel_keeps_small_step () =
  let n = Array.length Controller.fir_taps in
  let clean = Array.make n 0.5 in
  let stepped = Array.copy clean in
  stepped.(4) <- 0.5 +. (0.5 *. gains.Controller.jump_threshold);
  checkb "small step kept" true
    (Controller.sensor_channel gains stepped <> Controller.sensor_channel gains clean)

let test_normalize_identity_below_limit () =
  let ux, uy = Controller.normalize gains ~ux:0.3 ~uy:0.4 in
  checkf 0. "ux unchanged" 0.3 ux;
  checkf 0. "uy unchanged" 0.4 uy

let test_normalize_scales_to_limit () =
  let ux, uy = Controller.normalize gains ~ux:3. ~uy:4. in
  let mag = sqrt ((ux *. ux) +. (uy *. uy)) in
  checkf 1e-9 "scaled to limit" gains.Controller.u_total_max mag;
  checkf 1e-9 "direction kept" (3. /. 4.) (ux /. uy)

let test_control_axis_tracks_reference () =
  (* with zero filtered estimate and positive reference, command positive *)
  let st = Controller.fresh_state () in
  let u = Controller.control_axis gains st ~axis:`X ~frame:0 ~reference:0.5 in
  checkb "drives toward reference" true (u > 0.)

let test_control_axis_clamps () =
  let st = Controller.fresh_state () in
  let u = Controller.control_axis gains st ~axis:`X ~frame:0 ~reference:100. in
  checkf 0. "saturates at u_max" gains.Controller.u_max u

let test_control_axis_updates_state () =
  let st = Controller.fresh_state () in
  ignore (Controller.control_axis gains st ~axis:`X ~frame:0 ~reference:0.5);
  checkb "integrator moved" true (st.Controller.integ_x <> 0.);
  checkb "prev error stored" true (st.Controller.prev_e_x = 0.5);
  checkb "other axis untouched" true
    (st.Controller.integ_y = 0. && st.Controller.prev_e_y = 0.)

let test_covariance_sweep_phases_cover () =
  (* after cov_phases consecutive frames every interior element was updated *)
  let st = Controller.fresh_state () in
  Array.fill st.Controller.covariance 0 (Array.length st.Controller.covariance) 1.;
  for f = 0 to Controller.cov_phases - 1 do
    Controller.covariance_sweep st ~frame:f
  done;
  let n = Controller.cov_n in
  let untouched = ref 0 in
  Array.iteri
    (fun k v -> if k >= n + 1 && v = 1. then incr untouched)
    st.Controller.covariance;
  checki "all interior elements updated" 0 !untouched

let test_covariance_sweep_deterministic () =
  let run () =
    let st = Controller.fresh_state () in
    Array.iteri (fun k _ -> st.Controller.covariance.(k) <- float_of_int k /. 100.)
      st.Controller.covariance;
    Controller.covariance_sweep st ~frame:4;
    st.Controller.cov_proxy
  in
  checkf 0. "deterministic" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Codegen <-> golden equivalence *)

let test_program_shape () =
  let p = Codegen.program ~frames:4 () in
  checkb "has a reasonable size" true (Repro_isa.Program.length p > 1000);
  (* all three task entry points exist *)
  List.iter
    (fun l -> ignore (Repro_isa.Program.label_index p l))
    [ "main"; "task_sensor"; "task_control_x"; "task_control_y" ]

let test_generated_matches_golden_bitwise =
  qtest
    (QCheck.Test.make ~name:"generated code == golden controller (bitwise)" ~count:25
       QCheck.int64 (fun seed ->
         let e =
           Experiment.create ~frames:6 ~config:P.Config.deterministic ~base_seed:seed ()
         in
         Experiment.check_functional e ~run_index:0 = 0.))

let test_variants_run () =
  List.iter
    (fun variant ->
      let p = Codegen.program ~variant ~frames:2 () in
      let m = Repro_isa.Memory.create p in
      let sc = Mission.generate ~frames:2 ~seed:1L () in
      Mission.load_memory sc m;
      let stats =
        Repro_isa.Executor.run ~program:p
          ~layout:(Repro_isa.Layout.sequential p)
          ~memory:m
          ~on_retire:(fun _ -> ())
          ()
      in
      checkb "variant executes" true (stats.Repro_isa.Executor.retired > 10))
    [ Codegen.Full; Codegen.Sensor_only; Codegen.Control_x_only; Codegen.Control_y_only ]

let test_generated_uses_fp_long_ops () =
  (* the control law must exercise FDIV and FSQRT (the FPU jitter story) *)
  let e = Experiment.create ~frames:4 ~config:P.Config.deterministic ~base_seed:7L () in
  let m = Experiment.run e ~run_index:0 in
  checkb "fdiv/fsqrt present" true (m.P.Metrics.fp_long_ops >= 4 * 5)

(* ------------------------------------------------------------------ *)
(* Mission *)

let test_mission_deterministic () =
  let a = Mission.generate ~seed:11L () in
  let b = Mission.generate ~seed:11L () in
  checkb "same scenario" true (a.Mission.x.Mission.position = b.Mission.x.Mission.position);
  checkb "same commands" true (a.Mission.expected_cmd_x = b.Mission.expected_cmd_x)

let test_mission_seed_sensitivity () =
  let a = Mission.generate ~seed:11L () in
  let b = Mission.generate ~seed:12L () in
  checkb "different scenario" true
    (a.Mission.x.Mission.position <> b.Mission.x.Mission.position)

let test_mission_sizes () =
  let frames = 5 in
  let sc = Mission.generate ~frames ~seed:3L () in
  let n = frames * Codegen.samples_per_frame in
  checki "position samples" n (Array.length sc.Mission.x.Mission.position);
  checki "rate samples" n (Array.length sc.Mission.y.Mission.rate);
  checki "refs" frames (Array.length sc.Mission.ref_x);
  checki "commands" frames (Array.length sc.Mission.expected_cmd_x);
  checki "covariance"
    (Controller.cov_n * Controller.cov_n)
    (Array.length sc.Mission.covariance_init)

let test_mission_commands_bounded () =
  for seed = 1 to 20 do
    let sc = Mission.generate ~seed:(Int64.of_int seed) () in
    Array.iter
      (fun u ->
        checkb "command within per-axis clamp" true
          (Float.abs u <= gains.Controller.u_max +. 1e-12))
      sc.Mission.expected_cmd_x;
    (* combined magnitude limit *)
    Array.iteri
      (fun k ux ->
        let uy = sc.Mission.expected_cmd_y.(k) in
        checkb "combined magnitude" true
          (sqrt ((ux *. ux) +. (uy *. uy)) <= gains.Controller.u_total_max +. 1e-9))
      sc.Mission.expected_cmd_x
  done

let test_mission_closed_loop_controls () =
  (* with control active the attitude should stay bounded *)
  let sc = Mission.generate ~frames:40 ~seed:5L () in
  checkb "attitude bounded" true
    (Float.abs sc.Mission.final_theta_x < 2. && Float.abs sc.Mission.final_theta_y < 2.)

(* ------------------------------------------------------------------ *)
(* Experiment harness *)

let test_experiment_reproducible () =
  let e1 = Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:77L () in
  let e2 = Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:77L () in
  checkf 0. "same measurement" (Experiment.measure e1 ~run_index:3)
    (Experiment.measure e2 ~run_index:3)

let test_experiment_runs_differ () =
  let e = Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:77L () in
  let xs = Experiment.collect e ~runs:10 in
  checkb "runs differ" true (Array.exists (fun x -> x <> xs.(0)) xs)

let test_experiment_path_signatures_vary () =
  let e = Experiment.create ~frames:4 ~config:P.Config.deterministic ~base_seed:77L () in
  let sigs = List.init 10 (fun i -> Experiment.path_signature e ~run_index:i) in
  checkb "inputs induce distinct paths" true
    (List.length (List.sort_uniq compare sigs) > 1)

let test_experiment_path_signature_platform_independent () =
  let det = Experiment.create ~frames:4 ~config:P.Config.deterministic ~base_seed:9L () in
  let rand = Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:9L () in
  checki "same path either platform"
    (Experiment.path_signature det ~run_index:2)
    (Experiment.path_signature rand ~run_index:2)

let test_experiment_layout_changes_det_timing () =
  let e = Experiment.create ~frames:4 ~config:P.Config.deterministic ~base_seed:13L () in
  let p = Experiment.program e in
  let timings =
    List.map
      (fun seed ->
        let e' = Experiment.with_layout e (Repro_isa.Layout.scrambled ~seed p) in
        Experiment.measure e' ~run_index:0)
      [ 1L; 2L; 3L; 4L; 5L; 6L ]
  in
  checkb "DET timing layout-dependent" true
    (List.length (List.sort_uniq compare timings) > 1)

let test_experiment_functional_on_rand_platform () =
  let e = Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:21L () in
  checkf 0. "functional equivalence independent of platform" 0.
    (Experiment.check_functional e ~run_index:5)

(* ------------------------------------------------------------------ *)
(* RTOS: preemptive fixed-priority scheduling *)

let rtos_setup ?(seed = 3L) () =
  let program = Codegen.program ~frames:8 () in
  let layout = Repro_isa.Layout.sequential program in
  let memory = Repro_isa.Memory.create program in
  let sc = Mission.generate ~frames:8 ~seed () in
  Mission.load_memory sc memory;
  let core = P.Core_sim.create ~config:P.Config.mbpta_compliant ~seed () in
  P.Core_sim.reset_run core;
  (program, layout, memory, core)

let find_task t name =
  List.find (fun r -> r.T.Rtos.spec.T.Rtos.name = name) t.T.Rtos.per_task

let test_rtos_all_tasks_complete () =
  let program, layout, memory, core = rtos_setup () in
  let tasks = T.Rtos.tvca_tasks ~period:60_000 () in
  let t = T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:480_000 () in
  List.iter
    (fun r ->
      checkb (r.T.Rtos.spec.T.Rtos.name ^ " ran") true (r.T.Rtos.activations >= 7);
      checki (r.T.Rtos.spec.T.Rtos.name ^ " no skips") 0 r.T.Rtos.skipped_releases)
    t.T.Rtos.per_task;
  checkb "idle time exists at low utilization" true (t.T.Rtos.idle_cycles > 0)

let test_rtos_priority_order_in_responses () =
  (* all released together: lower-priority tasks wait for higher ones *)
  let program, layout, memory, core = rtos_setup () in
  let tasks = T.Rtos.tvca_tasks ~period:100_000 () in
  let t = T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:400_000 () in
  let max_response name =
    let r = find_task t name in
    Array.fold_left Float.max 0. r.T.Rtos.response_times
  in
  checkb "sensor before control_x" true (max_response "sensor" < max_response "control_x");
  checkb "control_x before control_y" true
    (max_response "control_x" < max_response "control_y")

let test_rtos_preemption () =
  (* sensor demoted to low priority and started first; a high-priority
     control job released mid-flight must preempt it *)
  let program, layout, memory, core = rtos_setup () in
  let tasks =
    [
      {
        T.Rtos.name = "control_hi";
        entry = "task_control_x";
        priority = 0;
        period = 200_000;
        offset = 3_000;
      };
      {
        T.Rtos.name = "sensor_lo";
        entry = "task_sensor";
        priority = 5;
        period = 200_000;
        offset = 0;
      };
    ]
  in
  let t = T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:200_000 () in
  checkb "preempted at least once" true (t.T.Rtos.preemptions >= 1);
  let sensor = find_task t "sensor_lo" and hi = find_task t "control_hi" in
  checkb "both completed" true (sensor.T.Rtos.activations = 1 && hi.T.Rtos.activations = 1);
  (* the preempting job's response is short; the victim carries the delay *)
  checkb "victim slower than preemptor" true
    (sensor.T.Rtos.response_times.(0) > hi.T.Rtos.response_times.(0))

let test_rtos_overload_skips () =
  let program, layout, memory, core = rtos_setup () in
  (* the sensor task cannot possibly finish within 1000 cycles *)
  let tasks =
    [
      {
        T.Rtos.name = "sensor";
        entry = "task_sensor";
        priority = 0;
        period = 1_000;
        offset = 0;
      };
    ]
  in
  let t = T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:100_000 () in
  let sensor = find_task t "sensor" in
  checkb "overload detected" true (sensor.T.Rtos.skipped_releases > 0)

let test_rtos_rejects_duplicate_priorities () =
  let program, layout, memory, core = rtos_setup () in
  let tasks =
    [
      { T.Rtos.name = "a"; entry = "task_sensor"; priority = 1; period = 10_000; offset = 0 };
      {
        T.Rtos.name = "b";
        entry = "task_control_x";
        priority = 1;
        period = 10_000;
        offset = 0;
      };
    ]
  in
  checkb "duplicate priorities rejected" true
    (try
       ignore (T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:1000 ());
       false
     with Invalid_argument _ -> true)

let test_rtos_deterministic () =
  let run () =
    let program, layout, memory, core = rtos_setup ~seed:11L () in
    let tasks = T.Rtos.tvca_tasks ~period:60_000 ~release_jitter:500 () in
    let t = T.Rtos.run ~core ~program ~layout ~memory ~tasks ~horizon:300_000 () in
    List.map (fun r -> r.T.Rtos.response_times) t.T.Rtos.per_task
  in
  checkb "same seed, same schedule" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Schedule-randomization policies *)

let base_tasks () = T.Rtos.tvca_tasks ~period:60_000 ()

let sorted_priorities tasks =
  List.sort Int.compare (List.map (fun s -> s.T.Rtos.priority) tasks)

let test_policy_pure_function_of_seed () =
  List.iter
    (fun policy ->
      let apply seed =
        T.Rtos.schedule_signature
          (T.Rtos.apply_policy policy ~seed ~max_jitter:2_000 (base_tasks ()))
      in
      checkb
        (T.Rtos.policy_name policy ^ " same seed, same schedule")
        true
        (String.equal (apply 77L) (apply 77L)))
    T.Rtos.all_policies;
  (* Randomizing policies actually depend on the seed. *)
  let distinct_under policy =
    let sigs =
      List.map
        (fun i ->
          T.Rtos.schedule_signature
            (T.Rtos.apply_policy policy ~seed:(Int64.of_int i) ~max_jitter:2_000
               (base_tasks ())))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    in
    List.length (List.sort_uniq String.compare sigs)
  in
  checkb "shuffle varies with seed" true (distinct_under T.Rtos.Priority_shuffle > 1);
  checkb "jitter varies with seed" true (distinct_under T.Rtos.Offset_jitter > 1)

let test_policy_fixed_is_identity () =
  let tasks = base_tasks () in
  checkb "fixed leaves the task set untouched" true
    (T.Rtos.apply_policy T.Rtos.Fixed_priority ~seed:123L ~max_jitter:5_000 tasks = tasks)

let test_policy_shuffle_preserves_priorities () =
  (* A priority permutation within equal-period classes: the multiset of
     priorities, the periods and the offsets all survive. *)
  let tasks = base_tasks () in
  List.iter
    (fun seed ->
      let shuffled =
        T.Rtos.apply_policy T.Rtos.Priority_shuffle ~seed ~max_jitter:0 tasks
      in
      checkb "priority multiset preserved" true
        (sorted_priorities shuffled = sorted_priorities tasks);
      List.iter2
        (fun a b ->
          checkb "task order stable" true (String.equal a.T.Rtos.name b.T.Rtos.name);
          checkb "period unchanged" true (a.T.Rtos.period = b.T.Rtos.period);
          checkb "offset unchanged" true (a.T.Rtos.offset = b.T.Rtos.offset))
        tasks shuffled)
    [ 1L; 2L; 3L; 4L; 5L ]

let test_policy_jitter_offsets_grow () =
  let tasks = base_tasks () in
  let max_jitter = 2_000 in
  List.iter
    (fun seed ->
      let jittered = T.Rtos.apply_policy T.Rtos.Offset_jitter ~seed ~max_jitter tasks in
      List.iter2
        (fun a b ->
          checkb "offset only grows" true (b.T.Rtos.offset >= a.T.Rtos.offset);
          checkb "offset within jitter bound" true
            (b.T.Rtos.offset <= a.T.Rtos.offset + max_jitter);
          checkb "priority unchanged" true (a.T.Rtos.priority = b.T.Rtos.priority))
        tasks jittered)
    [ 10L; 11L; 12L; 13L ]

let test_randomization_metrics () =
  (* 4 observations of 2 distinct schedules, 3:1 split. *)
  let r = T.Rtos.randomization_of_signatures [ "a"; "a"; "a"; "b" ] in
  checkb "schedules" true (r.T.Rtos.schedules = 4);
  checkb "distinct" true (r.T.Rtos.distinct = 2);
  let expected_entropy = -.((0.75 *. (log 0.75 /. log 2.)) +. (0.25 *. (log 0.25 /. log 2.))) in
  checkb "entropy" true (Float.abs (r.T.Rtos.entropy_bits -. expected_entropy) < 1e-12);
  checkb "vulnerability = modal probability" true (r.T.Rtos.vulnerability = 0.75);
  (* Degenerate single schedule: zero entropy, fully predictable. *)
  let fixed = T.Rtos.randomization_of_signatures [ "s"; "s" ] in
  checkb "fixed entropy 0" true (fixed.T.Rtos.entropy_bits = 0.);
  checkb "fixed vulnerability 1" true (fixed.T.Rtos.vulnerability = 1.)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match T.Rtos.policy_of_string (T.Rtos.policy_name p) with
      | Ok p' -> checkb (T.Rtos.policy_name p ^ " roundtrips") true (p = p')
      | Error e -> Alcotest.failf "policy_of_string failed: %s" e)
    T.Rtos.all_policies;
  checkb "unknown policy rejected" true
    (match T.Rtos.policy_of_string "bogus" with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "repro_tvca"
    [
      ( "dynamics",
        [
          Alcotest.test_case "equilibrium" `Quick test_equilibrium_is_fixed_point;
          Alcotest.test_case "damping decays" `Quick test_damped_system_decays;
          Alcotest.test_case "steady state" `Quick test_constant_command_steady_state;
          Alcotest.test_case "rk4 consistency" `Quick test_rk4_step_size_consistency;
          Alcotest.test_case "acceleration sign" `Quick test_angular_acceleration_sign;
        ] );
      ( "controller",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "taps normalized" `Quick test_fir_taps_normalized;
          Alcotest.test_case "constant input" `Quick test_sensor_channel_constant_input;
          Alcotest.test_case "rejects spike" `Quick test_sensor_channel_rejects_spike;
          Alcotest.test_case "keeps small step" `Quick test_sensor_channel_keeps_small_step;
          Alcotest.test_case "normalize identity" `Quick test_normalize_identity_below_limit;
          Alcotest.test_case "normalize scales" `Quick test_normalize_scales_to_limit;
          Alcotest.test_case "tracks reference" `Quick test_control_axis_tracks_reference;
          Alcotest.test_case "clamps output" `Quick test_control_axis_clamps;
          Alcotest.test_case "updates state" `Quick test_control_axis_updates_state;
          Alcotest.test_case "covariance phases cover" `Quick
            test_covariance_sweep_phases_cover;
          Alcotest.test_case "covariance deterministic" `Quick
            test_covariance_sweep_deterministic;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "program shape" `Quick test_program_shape;
          test_generated_matches_golden_bitwise;
          Alcotest.test_case "variants run" `Quick test_variants_run;
          Alcotest.test_case "uses fp long ops" `Quick test_generated_uses_fp_long_ops;
        ] );
      ( "mission",
        [
          Alcotest.test_case "deterministic" `Quick test_mission_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_mission_seed_sensitivity;
          Alcotest.test_case "sizes" `Quick test_mission_sizes;
          Alcotest.test_case "commands bounded" `Quick test_mission_commands_bounded;
          Alcotest.test_case "closed loop bounded" `Quick test_mission_closed_loop_controls;
        ] );
      ( "rtos",
        [
          Alcotest.test_case "all tasks complete" `Quick test_rtos_all_tasks_complete;
          Alcotest.test_case "priority order" `Quick test_rtos_priority_order_in_responses;
          Alcotest.test_case "preemption" `Quick test_rtos_preemption;
          Alcotest.test_case "overload skips" `Quick test_rtos_overload_skips;
          Alcotest.test_case "duplicate priorities" `Quick
            test_rtos_rejects_duplicate_priorities;
          Alcotest.test_case "deterministic" `Quick test_rtos_deterministic;
        ] );
      ( "shuffle",
        [
          Alcotest.test_case "policies pure in seed" `Quick test_policy_pure_function_of_seed;
          Alcotest.test_case "fixed is identity" `Quick test_policy_fixed_is_identity;
          Alcotest.test_case "shuffle preserves priorities" `Quick
            test_policy_shuffle_preserves_priorities;
          Alcotest.test_case "jitter grows offsets" `Quick test_policy_jitter_offsets_grow;
          Alcotest.test_case "randomization metrics" `Quick test_randomization_metrics;
          Alcotest.test_case "policy names roundtrip" `Quick test_policy_names_roundtrip;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "reproducible" `Quick test_experiment_reproducible;
          Alcotest.test_case "runs differ" `Quick test_experiment_runs_differ;
          Alcotest.test_case "paths vary" `Quick test_experiment_path_signatures_vary;
          Alcotest.test_case "paths platform-independent" `Quick
            test_experiment_path_signature_platform_independent;
          Alcotest.test_case "DET layout sensitivity" `Quick
            test_experiment_layout_changes_det_timing;
          Alcotest.test_case "functional on RAND" `Quick
            test_experiment_functional_on_rand_platform;
        ] );
    ]
