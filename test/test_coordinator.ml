(* Fault-tolerant distributed campaigns: shard layout purity, supervision
   policy (retry/backoff/graceful degradation), and the end-to-end contract
   — a sharded campaign, under any injected failure pattern this suite can
   produce, yields reports bit-identical to a single-process run.

   Workers here run in-process (the supervision loop takes a [run_shard]
   callback), so crashes are injected deterministically with
   [Store.set_fail_after] instead of killing real processes; the CLI smoke
   tests in CI exercise the [run_worker] process path. *)

module M = Repro_mbpta
module Store = M.Store
module Coordinator = M.Coordinator

let temp_dir () =
  let f = Filename.temp_file "coord_test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dirs n f =
  let dirs = List.init n (fun _ -> temp_dir ()) in
  Fun.protect ~finally:(fun () -> List.iter rm_rf dirs) (fun () -> f dirs)

let check_bits name expected actual =
  let b a = Array.to_list (Array.map Int64.bits_of_float a) in
  Alcotest.(check (list int64)) name (b expected) (b actual)

(* ------------------------------------------------------------------ *)
(* shard layout *)

let test_shard_spans_properties () =
  List.iter
    (fun (shards, chunk_size, runs) ->
      let spans = Coordinator.shard_spans ~shards ~chunk_size ~runs in
      (* spans tile [0, runs) exactly once, in order *)
      let covered =
        List.fold_left
          (fun pos (lo, hi) ->
            Alcotest.(check int)
              (Printf.sprintf "contiguous at %d (s=%d c=%d r=%d)" pos shards chunk_size
                 runs)
              pos lo;
            Alcotest.(check bool) "nonempty span" true (hi > lo);
            (* every boundary except the last lands on a chunk multiple *)
            Alcotest.(check int) "chunk-aligned lo" 0 (lo mod chunk_size);
            if hi <> runs then Alcotest.(check int) "chunk-aligned hi" 0 (hi mod chunk_size);
            hi)
          0 spans
      in
      Alcotest.(check int) "spans cover all runs" runs covered;
      Alcotest.(check bool) "at most one span per shard" true
        (List.length spans <= shards))
    [
      (1, 8, 30);
      (3, 8, 30);
      (4, 8, 32);
      (7, 8, 30) (* more shards than chunks: empty shards dropped *);
      (3, 256, 600);
      (16, 256, 3000);
      (2, 1, 1);
    ];
  Alcotest.(check (list (pair int int)))
    "3 shards over 4 chunks of 8" [ (0, 16); (16, 24); (24, 30) ]
    (Coordinator.shard_spans ~shards:3 ~chunk_size:8 ~runs:30);
  Alcotest.(check (list (pair int int)))
    "zero runs, zero spans" []
    (Coordinator.shard_spans ~shards:3 ~chunk_size:8 ~runs:0);
  match Coordinator.shard_spans ~shards:0 ~chunk_size:8 ~runs:10 with
  | _ -> Alcotest.fail "shards=0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_backoff_deterministic () =
  let policy = { (Coordinator.default_policy ~shards:2) with Coordinator.backoff = 0.5 } in
  List.iter
    (fun (attempt, expected) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d" attempt)
        expected
        (Coordinator.backoff_delay ~policy ~attempt))
    [ (0, 0.5); (1, 1.0); (2, 2.0); (4, 8.0); (5, 8.0) (* capped *); (10, 8.0) ]

(* ------------------------------------------------------------------ *)
(* supervision *)

let no_wait policy = { policy with Coordinator.backoff = 0.0 }

let test_supervise_retries_and_degrades () =
  (* shard 1 completes first try; shard 2 needs two retries; shard 3 never
     completes — reported unrecoverable, not raised *)
  let policy = no_wait (Coordinator.default_policy ~shards:3) in
  let run_shard ~shard ~span:_ ~attempt =
    match shard with
    | 1 -> Ok ()
    | 2 -> if attempt >= 2 then Ok () else Error (Coordinator.Crashed "flaky")
    | _ -> Error (Coordinator.Crashed "dead on arrival")
  in
  let report = Coordinator.supervise ~policy ~chunk_size:8 ~runs:30 ~run_shard () in
  Alcotest.(check int) "total runs" 30 report.Coordinator.total_runs;
  Alcotest.(check int) "retries counted" 4 report.Coordinator.retries;
  Alcotest.(check int) "one unrecoverable shard" 1 report.Coordinator.unrecoverable;
  let r = report.Coordinator.shard_reports in
  Alcotest.(check (list int)) "reports in shard order" [ 1; 2; 3 ]
    (List.map (fun s -> s.Coordinator.shard) r);
  Alcotest.(check (list bool)) "completion per shard" [ true; true; false ]
    (List.map (fun s -> s.Coordinator.completed) r);
  Alcotest.(check (list int)) "attempts per shard" [ 1; 3; 3 ]
    (List.map (fun s -> s.Coordinator.attempts) r);
  (* the failure transcript is deterministic: counter-based, in order *)
  let failed = List.nth r 2 in
  Alcotest.(check (list int)) "failed attempts recorded" [ 0; 1; 2 ]
    (List.map (fun f -> f.Coordinator.attempt) failed.Coordinator.failures)

(* ------------------------------------------------------------------ *)
(* end-to-end: sharded collection + merge = single-process campaign *)

let runs = 30
let chunk_size = 8
let config = [ ("scenario", "coordinator-test"); ("seed", "9") ]
let key = Store.key ~chunk_size config

let measure_det i = (float_of_int i *. 19.5) +. sin (float_of_int i) +. 1400.
let measure_rand i = (float_of_int i *. 12.75) +. cos (float_of_int (i * 5)) +. 1400.

let campaign_input =
  { (M.Campaign.default_input ~measure_det ~measure_rand) with M.Campaign.runs }

let campaign_samples = function
  | Ok (c : M.Campaign.t) -> (c.det_sample, c.rand_sample)
  | Error f -> Alcotest.failf "campaign failed: %a" M.Protocol.pp_failure f

(* One in-process worker attempt over its shard store; [fail_after] injects
   a mid-shard crash on selected (shard, attempt) pairs. *)
let worker_attempt ?fail_after dir ~shard ~span ~attempt =
  let root = Store.open_root ~dir in
  match
    Store.open_session ~chunk_size ~resume:true ~shard:span root ~key ~config ~runs
      ~resilient:false
  with
  | Error e -> Error (Coordinator.Crashed e)
  | Ok s -> (
      (match Option.bind fail_after (fun f -> f ~shard ~attempt) with
      | Some budget -> Store.set_fail_after s budget
      | None -> ());
      match
        List.iter
          (fun input_phase ->
            let measure = if input_phase = "collect_det" then measure_det else measure_rand in
            ignore (Store.collect s ~jobs:1 ~phase:input_phase runs measure))
          [ "collect_det"; "collect_rand" ]
      with
      | () ->
          Store.close s;
          Ok ()
      | exception Store.Injected_crash _ ->
          Store.close s;
          Error (Coordinator.Crashed "injected crash"))

let run_distributed ?fail_after ?(worker_retries = 2) ~shards ~jobs dst_dir shard_dirs =
  let policy =
    no_wait
      { (Coordinator.default_policy ~shards) with Coordinator.max_retries = worker_retries }
  in
  let dir_of shard = List.nth shard_dirs (shard - 1) in
  let run_shard ~shard ~span ~attempt =
    worker_attempt ?fail_after (dir_of shard) ~shard ~span ~attempt
  in
  let report = Coordinator.supervise ~policy ~chunk_size ~runs ~run_shard () in
  let src = List.map (fun dir -> Store.open_root ~dir) shard_dirs in
  let dst = Store.open_root ~dir:dst_dir in
  (match Store.merge ~src dst with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "merge: %s" e);
  (* final campaign over the merged record, resuming any coverage gap *)
  let session =
    match
      Store.open_session ~chunk_size ~resume:true dst ~key ~config ~runs
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "resume over merged record: %s" e
  in
  let result = M.Campaign.run ~jobs ~store:session campaign_input in
  Store.close session;
  (report, campaign_samples result)

let test_distributed_equals_single_process () =
  let det_cold, rand_cold = campaign_samples (M.Campaign.run ~jobs:1 campaign_input) in
  List.iter
    (fun (shards, jobs) ->
      with_dirs (shards + 1) @@ fun dirs ->
      let dst_dir, shard_dirs = (List.hd dirs, List.tl dirs) in
      let report, (det, rand) = run_distributed ~shards ~jobs dst_dir shard_dirs in
      Alcotest.(check int)
        (Printf.sprintf "no failures (shards=%d jobs=%d)" shards jobs)
        0 report.Coordinator.unrecoverable;
      check_bits (Printf.sprintf "det: shards=%d jobs=%d = cold" shards jobs) det_cold det;
      check_bits (Printf.sprintf "rand: shards=%d jobs=%d = cold" shards jobs) rand_cold
        rand)
    [ (1, 1); (2, 4); (4, 1); (4, 4) ]

let test_distributed_with_worker_crashes () =
  let det_cold, rand_cold = campaign_samples (M.Campaign.run ~jobs:1 campaign_input) in
  (* every shard's first attempt dies after one checkpoint chunk; shard 2's
     second attempt dies too — retries resume from the shard record *)
  let fail_after ~shard ~attempt =
    if attempt = 0 || (shard = 2 && attempt = 1) then Some 1 else None
  in
  with_dirs 4 @@ fun dirs ->
  let dst_dir, shard_dirs = (List.hd dirs, List.tl dirs) in
  let report, (det, rand) =
    run_distributed ~fail_after ~shards:3 ~jobs:4 dst_dir shard_dirs
  in
  Alcotest.(check int) "all shards recovered" 0 report.Coordinator.unrecoverable;
  Alcotest.(check bool) "retries were spent" true (report.Coordinator.retries >= 3);
  check_bits "det sample bit-identical despite crashes" det_cold det;
  check_bits "rand sample bit-identical despite crashes" rand_cold rand

let test_unrecoverable_shard_degrades () =
  let det_cold, rand_cold = campaign_samples (M.Campaign.run ~jobs:1 campaign_input) in
  (* shard 2 dies before persisting anything, on every attempt: its span is a
     coverage gap the final campaign recomputes in-process — slower, never
     wrong *)
  let fail_after ~shard ~attempt:_ = if shard = 2 then Some 0 else None in
  with_dirs 4 @@ fun dirs ->
  let dst_dir, shard_dirs = (List.hd dirs, List.tl dirs) in
  let report, (det, rand) =
    run_distributed ~fail_after ~worker_retries:1 ~shards:3 ~jobs:1 dst_dir shard_dirs
  in
  Alcotest.(check int) "shard 2 reported unrecoverable" 1
    report.Coordinator.unrecoverable;
  Alcotest.(check bool) "shard 2 is the failed one" true
    (List.exists
       (fun s -> s.Coordinator.shard = 2 && not s.Coordinator.completed)
       report.Coordinator.shard_reports);
  check_bits "det sample survives the dead shard" det_cold det;
  check_bits "rand sample survives the dead shard" rand_cold rand

(* ------------------------------------------------------------------ *)
(* resilient sharded campaigns: trails collected by shard workers replay
   through the coordinator's final accounting bit-identically *)

let outcome_of ~base ~run_index ~attempt : M.Resilience.outcome =
  match ((run_index * 7) + attempt) mod 11 with
  | 0 when attempt < 2 -> Timeout { detail = Printf.sprintf "wd %d/%d" run_index attempt }
  | 5 when attempt < 1 -> Crashed { detail = Printf.sprintf "trap %d" run_index }
  | _ -> Completed (base +. (float_of_int run_index *. 9.5) +. (float_of_int attempt *. 0.25))

let resilient_input =
  M.Campaign.resilient_input ~base:campaign_input
    ~measure_det_outcome:(outcome_of ~base:1600.)
    ~measure_rand_outcome:(outcome_of ~base:1900.) ()

let test_resilient_distributed_equals_single_process () =
  let cold = M.Campaign.run_resilient ~jobs:1 resilient_input in
  let det_cold, rand_cold = campaign_samples cold in
  with_dirs 4 @@ fun dirs ->
  let dst_dir, shard_dirs = (List.hd dirs, List.tl dirs) in
  let policy = no_wait (Coordinator.default_policy ~shards:3) in
  let run_shard ~shard ~span ~attempt:_ =
    let root = Store.open_root ~dir:(List.nth shard_dirs (shard - 1)) in
    match
      Store.open_session ~chunk_size ~resume:true ~shard:span root ~key ~config ~runs
        ~resilient:true
    with
    | Error e -> Error (Coordinator.Crashed e)
    | Ok s -> (
        match M.Campaign.collect_shard_resilient ~jobs:1 ~store:s resilient_input with
        | Ok () ->
            Store.close s;
            Ok ()
        | Error f ->
            Store.close s;
            Error (Coordinator.Crashed (Format.asprintf "%a" M.Protocol.pp_failure f)))
  in
  let report = Coordinator.supervise ~policy ~chunk_size ~runs ~run_shard () in
  Alcotest.(check int) "all shards completed" 0 report.Coordinator.unrecoverable;
  let src = List.map (fun dir -> Store.open_root ~dir) shard_dirs in
  let dst = Store.open_root ~dir:dst_dir in
  (match Store.merge ~src dst with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "merge: %s" e);
  let session =
    match
      Store.open_session ~chunk_size ~resume:true dst ~key ~config ~runs ~resilient:true
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "resume: %s" e
  in
  let resumed = M.Campaign.run_resilient ~jobs:4 ~store:session resilient_input in
  Store.close session;
  let det, rand = campaign_samples resumed in
  check_bits "resilient det: sharded = single-process" det_cold det;
  check_bits "resilient rand: sharded = single-process" rand_cold rand;
  (* retry accounting replays from the merged trails identically too *)
  match (cold, resumed) with
  | Ok c, Ok r ->
      Alcotest.(check bool) "det resilience report identical" true
        (c.det_resilience = r.det_resilience);
      Alcotest.(check bool) "rand resilience report identical" true
        (c.rand_resilience = r.rand_resilience)
  | _ -> Alcotest.fail "campaigns must succeed"

(* ------------------------------------------------------------------ *)
(* coordinator crash mid-merge *)

let test_coordinator_dies_mid_merge () =
  let det_cold, rand_cold = campaign_samples (M.Campaign.run ~jobs:1 campaign_input) in
  with_dirs 4 @@ fun dirs ->
  let dst_dir, shard_dirs = (List.hd dirs, List.tl dirs) in
  let policy = no_wait (Coordinator.default_policy ~shards:3) in
  let run_shard ~shard ~span ~attempt =
    worker_attempt (List.nth shard_dirs (shard - 1)) ~shard ~span ~attempt
  in
  ignore (Coordinator.supervise ~policy ~chunk_size ~runs ~run_shard ());
  let src = List.map (fun dir -> Store.open_root ~dir) shard_dirs in
  let dst = Store.open_root ~dir:dst_dir in
  (* the coordinator is killed while writing the merged record *)
  (match Store.merge ~fail_after:3 ~src dst with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> ());
  Alcotest.(check bool) "tmp+rename left no torn destination" false
    (Sys.file_exists (Filename.concat dst_dir (key ^ ".jsonl")));
  (* a restarted coordinator re-merges and completes the campaign *)
  (match Store.merge ~src dst with
  | Ok m -> Alcotest.(check int) "re-merge lands the record" 1 m.Store.records_merged
  | Error e -> Alcotest.failf "re-merge: %s" e);
  let session =
    match
      Store.open_session ~chunk_size ~resume:true dst ~key ~config ~runs
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "resume: %s" e
  in
  let det, rand = campaign_samples (M.Campaign.run ~jobs:1 ~store:session campaign_input) in
  Store.close session;
  check_bits "det sample after coordinator restart" det_cold det;
  check_bits "rand sample after coordinator restart" rand_cold rand

(* ------------------------------------------------------------------ *)
(* Worker deadlines on an injectable clock.  Deadlines used to be measured
   on [Unix.gettimeofday]: an NTP step forward could kill a healthy worker
   and a step backward could spare a stalled one forever.  [run_worker]'s
   [?now] hook simulates exactly those clock behaviors. *)

let stepping_clock step =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. step;
    v

let test_worker_deadline_on_stepped_clock () =
  (* A worker that would sleep 30 s: with the mocked clock advancing 6 s
     per reading, the 10 s deadline trips after two polls — the test
     itself finishes in milliseconds of real time. *)
  match
    Coordinator.run_worker ~now:(stepping_clock 6.) ~deadline:(Some 10.)
      ~poll_interval:0.01
      ~argv:[| "/bin/sh"; "-c"; "sleep 30" |]
      ()
  with
  | Error (Coordinator.Stalled d) ->
      Alcotest.(check bool) "reports the configured deadline" true (d = 10.)
  | Error (Coordinator.Crashed e) -> Alcotest.failf "expected Stalled, got Crashed %s" e
  | Ok () -> Alcotest.fail "expected the stalled worker to be killed"

let test_worker_survives_frozen_clock () =
  (* A healthy worker under a clock that never advances (the monotonic
     equivalent of a backwards NTP step): elapsed time stays 0, so even a
     tight deadline cannot kill it and it completes normally. *)
  match
    Coordinator.run_worker ~now:(stepping_clock 0.) ~deadline:(Some 0.05)
      ~poll_interval:0.005
      ~argv:[| "/bin/sh"; "-c"; "true" |]
      ()
  with
  | Ok () -> ()
  | Error f -> Alcotest.failf "healthy worker killed: %a" Coordinator.pp_failure f

let () =
  Alcotest.run "coordinator"
    [
      ( "layout",
        [
          Alcotest.test_case "shard_spans properties" `Quick test_shard_spans_properties;
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "retries and graceful degradation" `Quick
            test_supervise_retries_and_degrades;
          Alcotest.test_case "deadline on stepped clock" `Quick
            test_worker_deadline_on_stepped_clock;
          Alcotest.test_case "frozen clock spares healthy worker" `Quick
            test_worker_survives_frozen_clock;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "sharded = single-process" `Quick
            test_distributed_equals_single_process;
          Alcotest.test_case "worker crashes mid-shard" `Quick
            test_distributed_with_worker_crashes;
          Alcotest.test_case "unrecoverable shard degrades" `Quick
            test_unrecoverable_shard_degrades;
          Alcotest.test_case "resilient sharded campaign" `Quick
            test_resilient_distributed_equals_single_process;
          Alcotest.test_case "coordinator dies mid-merge" `Quick
            test_coordinator_dies_mid_merge;
        ] );
    ]
