(* Tests for the robustness layer: the widened Protocol failure taxonomy
   (invalid samples rejected with typed errors, not undefined behavior),
   the Resilience run supervisor (classify / retry / quarantine / survival
   threshold / retry budget), SEU fault-injection determinism on the real
   TVCA workload, and the resilient campaign end to end. *)

module Prng = Repro_rng.Prng
module S = Repro_stats
module E = Repro_evt
module M = Repro_mbpta
module P = Repro_platform
module T = Repro_tvca
module R = M.Resilience

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf tol = Alcotest.check (Alcotest.float tol)

let gumbel_sample seed ~mu ~beta n =
  let g = Prng.create seed in
  let d = S.Distribution.Gumbel.create ~mu ~beta in
  Array.init n (fun _ -> S.Distribution.Gumbel.sample d g)

(* ------------------------------------------------------------------ *)
(* Protocol failure paths *)

let test_invalid_sample_nan () =
  let xs = gumbel_sample 11L ~mu:100. ~beta:5. 500 in
  xs.(123) <- Float.nan;
  match M.Protocol.analyze xs with
  | Error (M.Protocol.Invalid_sample { index; reason; _ }) ->
      checki "index" 123 index;
      Alcotest.check Alcotest.string "reason" "NaN" reason
  | Error f -> Alcotest.failf "wrong failure: %a" M.Protocol.pp_failure f
  | Ok _ -> Alcotest.fail "NaN sample must be rejected"

let test_invalid_sample_negative_and_infinite () =
  let xs = gumbel_sample 12L ~mu:100. ~beta:5. 500 in
  xs.(7) <- -1.;
  (match M.Protocol.analyze xs with
  | Error (M.Protocol.Invalid_sample { index; reason; _ }) ->
      checki "index" 7 index;
      Alcotest.check Alcotest.string "reason" "negative" reason
  | Error f -> Alcotest.failf "wrong failure: %a" M.Protocol.pp_failure f
  | Ok _ -> Alcotest.fail "negative sample must be rejected");
  xs.(7) <- Float.infinity;
  match M.Protocol.analyze xs with
  | Error (M.Protocol.Invalid_sample { reason; _ }) ->
      Alcotest.check Alcotest.string "reason" "infinite" reason
  | Error f -> Alcotest.failf "wrong failure: %a" M.Protocol.pp_failure f
  | Ok _ -> Alcotest.fail "infinite sample must be rejected"

let test_not_enough_runs () =
  match M.Protocol.analyze [| 1.; 2. |] with
  | Error (M.Protocol.Not_enough_runs { have; need }) ->
      checki "have" 2 have;
      checkb "need >= 100" true (need >= 100)
  | _ -> Alcotest.fail "expected Not_enough_runs"

let test_iid_rejected () =
  let g = Prng.create 13L in
  let n = 800 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.9 *. xs.(i - 1)) +. Prng.gaussian g
  done;
  (* shift up so the sample is non-negative yet still autocorrelated *)
  let lo = Array.fold_left Float.min xs.(0) xs in
  let xs = Array.map (fun v -> v -. lo) xs in
  match M.Protocol.analyze xs with
  | Error (M.Protocol.Iid_rejected _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" M.Protocol.pp_failure f
  | Ok _ -> Alcotest.fail "expected Iid_rejected"

let test_not_converged () =
  let xs = gumbel_sample 14L ~mu:1000. ~beta:50. 1000 in
  let options =
    {
      M.Protocol.default_options with
      M.Protocol.convergence_tolerance = 0.;  (* unattainable stability *)
    }
  in
  match M.Protocol.analyze ~options xs with
  | Error (M.Protocol.Not_converged c) -> checkb "flagged" false c.E.Convergence.converged
  | Error f -> Alcotest.failf "wrong failure: %a" M.Protocol.pp_failure f
  | Ok _ -> Alcotest.fail "expected Not_converged"

let test_pwcet_guards_are_not_asserts () =
  let xs = gumbel_sample 15L ~mu:100. ~beta:5. 200 in
  let model =
    E.Pwcet.Gumbel_tail (S.Distribution.Gumbel.create ~mu:100. ~beta:5.)
  in
  Alcotest.check_raises "block_size 0 rejected"
    (Invalid_argument "Pwcet.create: block_size must be >= 1") (fun () ->
      ignore (E.Pwcet.create ~model ~block_size:0 ~sample:xs));
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Pwcet.create: empty sample") (fun () ->
      ignore (E.Pwcet.create ~model ~block_size:1 ~sample:[||]));
  let curve = E.Pwcet.create ~model ~block_size:1 ~sample:xs in
  Alcotest.check_raises "cutoff 1.5 rejected"
    (Invalid_argument "Pwcet.estimate: cutoff_probability must lie in (0, 1)") (fun () ->
      ignore (E.Pwcet.estimate curve ~cutoff_probability:1.5))

let test_campaign_rejects_zero_runs () =
  let input =
    M.Campaign.default_input ~measure_det:(fun _ -> 1.) ~measure_rand:(fun _ -> 1.)
  in
  match M.Campaign.run { input with M.Campaign.runs = 0 } with
  | Error (M.Protocol.Not_enough_runs { have; _ }) -> checki "have" 0 have
  | _ -> Alcotest.fail "runs = 0 must be a typed failure"

(* ------------------------------------------------------------------ *)
(* Resilience supervisor *)

let completed v = R.Completed v

let test_supervise_clean_campaign () =
  let measure ~run_index ~attempt =
    checki "first attempt only" 0 attempt;
    completed (float_of_int run_index)
  in
  match R.supervise ~policy:R.default_policy ~runs:50 ~measure () with
  | Error e -> Alcotest.failf "unexpected error: %a" R.pp_error e
  | Ok r ->
      checki "all survive" 50 r.R.survivors;
      checki "none dropped" 0 r.R.dropped_runs;
      checki "no retries" 0 r.R.total_retries;
      checkb "no fault records" true (r.R.records = []);
      checkf 0. "run order preserved" 49. r.R.sample.(49)

let test_supervise_retries_transients () =
  (* every third run fails its first attempt, then recovers *)
  let measure ~run_index ~attempt =
    if run_index mod 3 = 0 && attempt = 0 then R.Timeout { detail = "transient" }
    else completed 100.
  in
  match R.supervise ~policy:R.default_policy ~runs:30 ~measure () with
  | Error e -> Alcotest.failf "unexpected error: %a" R.pp_error e
  | Ok r ->
      checki "all survive" 30 r.R.survivors;
      checki "ten runs retried" 10 r.R.retried_runs;
      checki "ten retries spent" 10 r.R.total_retries;
      checki "faulted runs logged" 10 (List.length r.R.records);
      checkb "logged runs marked recovered" true
        (List.for_all (fun (rec_ : R.record) -> rec_.R.survived) r.R.records)

let test_supervise_quarantines_and_proceeds () =
  (* runs 0 and 1 are irrecoverable; threshold of 90% still met at 50 runs *)
  let measure ~run_index ~attempt:_ =
    if run_index < 2 then R.Crashed { detail = "hard fault" } else completed 1.
  in
  match R.supervise ~policy:R.default_policy ~runs:50 ~measure () with
  | Error e -> Alcotest.failf "unexpected error: %a" R.pp_error e
  | Ok r ->
      checki "two dropped" 2 r.R.dropped_runs;
      checki "survivors" 48 r.R.survivors;
      checki "sample excludes quarantined" 48 (Array.length r.R.sample);
      let quarantined =
        List.filter (fun (rec_ : R.record) -> not rec_.R.survived) r.R.records
      in
      checki "both quarantined runs reported" 2 (List.length quarantined);
      (* each quarantined run burned 1 try + max_retries retries *)
      List.iter
        (fun (rec_ : R.record) ->
          checki "attempts recorded" (R.default_policy.R.max_retries + 1)
            (List.length rec_.R.attempts))
        quarantined

let test_supervise_survival_threshold () =
  let measure ~run_index ~attempt:_ =
    if run_index mod 2 = 0 then R.Corrupted { detail = "flipped" } else completed 1.
  in
  match R.supervise ~policy:R.default_policy ~runs:40 ~measure () with
  | Error (R.Too_few_survivors { survivors; required; total }) ->
      checki "survivors" 20 survivors;
      checki "total" 40 total;
      checki "required = ceil(0.9 * 40)" 36 required
  | Error e -> Alcotest.failf "wrong error: %a" R.pp_error e
  | Ok _ -> Alcotest.fail "50% survival must fail a 90% threshold"

let test_supervise_retry_budget () =
  let policy =
    { R.max_retries = 5; max_total_retries = Some 7; min_survival = 0. }
  in
  let measure ~run_index:_ ~attempt:_ = R.Timeout { detail = "always" } in
  match R.supervise ~policy ~runs:10 ~measure () with
  | Error (R.Retry_budget_exhausted { spent; limit; _ }) ->
      checki "spent = limit" 7 spent;
      checki "limit" 7 limit
  | Error e -> Alcotest.failf "wrong error: %a" R.pp_error e
  | Ok _ -> Alcotest.fail "retry budget must abort the campaign"

let test_supervise_invalid_policy () =
  let measure ~run_index:_ ~attempt:_ = completed 1. in
  (match R.supervise ~policy:R.default_policy ~runs:0 ~measure () with
  | Error (R.Invalid_policy _) -> ()
  | _ -> Alcotest.fail "runs 0 rejected");
  (match
     R.supervise
       ~policy:{ R.default_policy with R.max_retries = -1 }
       ~runs:10 ~measure ()
   with
  | Error (R.Invalid_policy _) -> ()
  | _ -> Alcotest.fail "negative retries rejected");
  match
    R.supervise
      ~policy:{ R.default_policy with R.min_survival = 1.5 }
      ~runs:10 ~measure ()
  with
  | Error (R.Invalid_policy _) -> ()
  | _ -> Alcotest.fail "min_survival > 1 rejected"

(* ------------------------------------------------------------------ *)
(* SEU injection on the real platform *)

let frames = 4
let seu_rate = 40.

let experiment () =
  T.Experiment.create ~frames ~config:P.Config.mbpta_compliant ~base_seed:77L ()

let test_zero_rate_bit_identical () =
  let exp = experiment () in
  let fault = T.Experiment.fault_config () in
  for run_index = 0 to 4 do
    match T.Experiment.run_faulty exp ~fault ~run_index () with
    | T.Experiment.Completed { metrics; faults } ->
        checki "no faults injected" 0 (List.length faults);
        checki "cycles identical to plain pipeline"
          (int_of_float (T.Experiment.measure exp ~run_index))
          (P.Metrics.cycles metrics);
        checki "metrics count no faults" 0 metrics.P.Metrics.faults_injected
    | o -> Alcotest.failf "rate 0 must complete: %a" T.Experiment.pp_fault_outcome o
  done

let test_fault_injection_deterministic () =
  let fault = T.Experiment.fault_config ~seu_rate ~watchdog_budget:2_000_000 () in
  let campaign_outcomes () =
    let exp = experiment () in
    List.init 20 (fun run_index -> T.Experiment.run_faulty exp ~fault ~run_index ())
  in
  let a = campaign_outcomes () and b = campaign_outcomes () in
  (* same base seed + rate: identical fault sites, instants and outcomes *)
  List.iteri
    (fun i (oa, ob) ->
      checkb
        (Printf.sprintf "run %d fault schedule identical" i)
        true
        (T.Experiment.fault_records oa = T.Experiment.fault_records ob);
      checkb
        (Printf.sprintf "run %d outcome identical" i)
        true
        (Format.asprintf "%a" T.Experiment.pp_fault_outcome oa
        = Format.asprintf "%a" T.Experiment.pp_fault_outcome ob))
    (List.combine a b)

let test_faults_actually_injected_and_counted () =
  let exp = experiment () in
  let fault = T.Experiment.fault_config ~seu_rate ~watchdog_budget:2_000_000 () in
  let total = ref 0 in
  let completed_with_faults = ref 0 in
  for run_index = 0 to 19 do
    let o = T.Experiment.run_faulty exp ~fault ~run_index () in
    let faults = T.Experiment.fault_records o in
    total := !total + List.length faults;
    match o with
    | T.Experiment.Completed { metrics; faults } ->
        checki "metrics agree with the injection log"
          (List.length faults) metrics.P.Metrics.faults_injected;
        if faults <> [] then incr completed_with_faults
    | _ -> ()
  done;
  checkb "the injector does fire at this rate" true (!total > 0);
  checkb "some runs complete despite upsets" true (!completed_with_faults > 0)

let test_retry_attempts_differ () =
  (* the deterministic reseed policy must actually change the randomization
     between attempts of the same run (else retrying an SEU-independent
     failure would loop forever) *)
  let exp = experiment () in
  let fault = T.Experiment.fault_config ~seu_rate ~watchdog_budget:2_000_000 () in
  (* run 2 is known to take upsets on attempt 0 at this seed and rate, so the
     comparison is between two non-empty schedules *)
  let schedule attempt =
    T.Experiment.fault_records (T.Experiment.run_faulty exp ~fault ~attempt ~run_index:2 ())
  in
  checkb "attempt 0 takes upsets" true (schedule 0 <> []);
  checkb "attempt 1 reseeds the fault stream" true (schedule 0 <> schedule 1);
  checkb "attempt derivation is itself deterministic" true (schedule 1 = schedule 1)

let test_watchdog_budget_fires () =
  let exp = experiment () in
  (* 1-cycle budget: every run times out immediately, fault-free or not *)
  let fault = T.Experiment.fault_config ~watchdog_budget:1 () in
  match T.Experiment.run_faulty exp ~fault ~run_index:0 () with
  | T.Experiment.Watchdog { cycles; budget; _ } ->
      checki "budget echoed" 1 budget;
      checkb "cycles past budget" true (cycles > budget)
  | o -> Alcotest.failf "expected watchdog: %a" T.Experiment.pp_fault_outcome o

(* ------------------------------------------------------------------ *)
(* Resilient campaign end to end *)

let outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      R.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog _ -> R.Timeout { detail = "watchdog" }
  | T.Experiment.Runaway _ -> R.Timeout { detail = "runaway" }
  | T.Experiment.Crashed { detail; _ } -> R.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      R.Corrupted { detail = Printf.sprintf "error %g" worst_error }

let test_resilient_campaign_on_tvca () =
  let runs = 150 in
  let det = T.Experiment.create ~frames ~config:P.Config.deterministic ~base_seed:77L () in
  let rand = experiment () in
  let fault = T.Experiment.fault_config ~seu_rate ~watchdog_budget:2_000_000 () in
  let measure exp ~run_index ~attempt =
    outcome_of (T.Experiment.run_faulty exp ~fault ~attempt ~run_index ())
  in
  let base =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand ~run_index:i))
      with
      M.Campaign.runs;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.check_convergence = false;
          M.Protocol.gate_on_iid = false;
        };
    }
  in
  let policy = { R.default_policy with R.max_retries = 3; R.min_survival = 0.5 } in
  match
    M.Campaign.run_resilient
      (M.Campaign.resilient_input ~policy ~base ~measure_det_outcome:(measure det)
         ~measure_rand_outcome:(measure rand) ())
  with
  | Error f -> Alcotest.failf "resilient campaign failed: %a" M.Protocol.pp_failure f
  | Ok c ->
      let rand_report =
        match c.M.Campaign.rand_resilience with
        | Some r -> r
        | None -> Alcotest.fail "resilient campaign must carry a RAND report"
      in
      checki "bookkeeping adds up" runs
        (rand_report.R.survivors + rand_report.R.dropped_runs);
      checki "sample is the survivor set" rand_report.R.survivors
        (Array.length c.M.Campaign.rand_sample);
      (match c.M.Campaign.analysis with
      | Ok a ->
          (* the surviving sample still yields a valid pWCET curve *)
          checkb "curve upper-bounds survivors" true
            (E.Pwcet.upper_bounds_observations a.M.Protocol.curve)
      | Error f ->
          Alcotest.failf "analysis on survivors failed: %a" M.Protocol.pp_failure f);
      let text = M.Campaign.render c in
      let contains ~needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      checkb "report renders the fault summary" true
        (contains ~needle:"fault/retry summary" text)

let () =
  Alcotest.run "resilience"
    [
      ( "protocol failures",
        [
          Alcotest.test_case "invalid sample: NaN" `Quick test_invalid_sample_nan;
          Alcotest.test_case "invalid sample: negative, infinite" `Quick
            test_invalid_sample_negative_and_infinite;
          Alcotest.test_case "not enough runs" `Quick test_not_enough_runs;
          Alcotest.test_case "iid rejected" `Quick test_iid_rejected;
          Alcotest.test_case "not converged" `Quick test_not_converged;
          Alcotest.test_case "pwcet guards survive release builds" `Quick
            test_pwcet_guards_are_not_asserts;
          Alcotest.test_case "campaign rejects zero runs" `Quick
            test_campaign_rejects_zero_runs;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean campaign" `Quick test_supervise_clean_campaign;
          Alcotest.test_case "retries transients" `Quick test_supervise_retries_transients;
          Alcotest.test_case "quarantines and proceeds" `Quick
            test_supervise_quarantines_and_proceeds;
          Alcotest.test_case "survival threshold" `Quick test_supervise_survival_threshold;
          Alcotest.test_case "retry budget" `Quick test_supervise_retry_budget;
          Alcotest.test_case "invalid policy" `Quick test_supervise_invalid_policy;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "zero rate is bit-identical" `Quick
            test_zero_rate_bit_identical;
          Alcotest.test_case "deterministic from base seed" `Quick
            test_fault_injection_deterministic;
          Alcotest.test_case "faults injected and counted" `Quick
            test_faults_actually_injected_and_counted;
          Alcotest.test_case "retry attempts reseed" `Quick test_retry_attempts_differ;
          Alcotest.test_case "watchdog fires" `Quick test_watchdog_budget_fires;
        ] );
      ( "resilient campaign",
        [
          Alcotest.test_case "tvca under radiation" `Quick test_resilient_campaign_on_tvca;
        ] );
    ]
