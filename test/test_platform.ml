(* Tests for repro_platform: cache invariants under every placement and
   replacement policy, TLB, FPU latency model, DRAM row-buffer model, bus
   contention, and the end-to-end core timing model (determinism, layout
   sensitivity of DET vs insensitivity of RAND). *)

module Prng = Repro_rng.Prng
module P = Repro_platform
module I = Repro_isa.Instr
module Builder = Repro_isa.Builder
module Layout = Repro_isa.Layout
module Memory = Repro_isa.Memory

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let small_geometry = { P.Config.size_bytes = 1024; line_bytes = 32; ways = 2 }
(* 1KB, 2-way, 32B lines -> 16 sets *)

let cache_config ?(placement = P.Config.Modulo) ?(replacement = P.Config.Lru) () =
  { P.Config.geometry = small_geometry; placement; replacement }

let make_cache ?placement ?replacement ?(seed = 1L) () =
  P.Cache.create ~config:(cache_config ?placement ?replacement ()) ~prng:(Prng.create seed)

let all_placements = [ P.Config.Modulo; P.Config.Random_modulo; P.Config.Hash_random ]
let all_replacements = [ P.Config.Lru; P.Config.Random_replacement; P.Config.Round_robin ]

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_geometry () =
  checki "sets" 16 (P.Config.sets small_geometry);
  checki "leon3 sets" 128 (P.Config.sets P.Config.leon3_geometry)

let test_geometry_invalid () =
  checkb "bad geometry rejected" true
    (try
       ignore (P.Config.sets { P.Config.size_bytes = 1000; line_bytes = 32; ways = 2 });
       false
     with Invalid_argument _ -> true)

let test_cold_miss_then_hit () =
  List.iter
    (fun placement ->
      List.iter
        (fun replacement ->
          let c = make_cache ~placement ~replacement () in
          checkb "first access misses" true
            (P.Cache.access c ~addr:0x1000 ~write:false = P.Cache.Miss);
          checkb "second access hits" true
            (P.Cache.access c ~addr:0x1000 ~write:false = P.Cache.Hit);
          (* same line, different byte *)
          checkb "same line hits" true
            (P.Cache.access c ~addr:0x101F ~write:false = P.Cache.Hit))
        all_replacements)
    all_placements

let test_capacity_within_bounds () =
  (* a working set equal to the capacity must fit under modulo+LRU *)
  let c = make_cache () in
  for line = 0 to 31 do
    ignore (P.Cache.access c ~addr:(line * 32) ~write:false)
  done;
  P.Cache.reset_stats c;
  for line = 0 to 31 do
    ignore (P.Cache.access c ~addr:(line * 32) ~write:false)
  done;
  let s = P.Cache.stats c in
  checki "all hits" 32 s.P.Cache.hits;
  checki "no misses" 0 s.P.Cache.misses

let test_conflict_eviction_modulo_lru () =
  (* three lines in the same set of a 2-way cache, cyclic access: LRU
     evicts each time *)
  let c = make_cache () in
  let addr i = i * 16 * 32 in
  (* same set 0 *)
  for round = 1 to 3 do
    ignore round;
    for i = 0 to 2 do
      ignore (P.Cache.access c ~addr:(addr i) ~write:false)
    done
  done;
  let s = P.Cache.stats c in
  checki "cyclic thrash misses" 9 s.P.Cache.misses

let test_write_through_no_allocate () =
  let c = make_cache () in
  checkb "write miss" true (P.Cache.access c ~addr:0x2000 ~write:true = P.Cache.Miss);
  (* no allocation on write miss: next read still misses *)
  checkb "read still misses" true (P.Cache.access c ~addr:0x2000 ~write:false = P.Cache.Miss);
  (* read allocated; write now hits and counts a write-through *)
  checkb "write hit after read" true (P.Cache.access c ~addr:0x2000 ~write:true = P.Cache.Hit);
  let s = P.Cache.stats c in
  checki "write-throughs" 2 s.P.Cache.write_throughs

(* Regression: a write miss must count exactly one access, one miss and one
   write-through — never a double-counted access or a dropped write-through.
   The invariant [hits + misses = accesses] and [write_throughs = writes] is
   checked over a mixed read/write stream under every policy pair. *)
let test_stats_invariant_mixed_stream =
  qtest
    (QCheck.Test.make ~count:100 ~name:"stats invariant on mixed read/write stream"
       QCheck.(
         triple (int_range 0 8) (int_range 0 2)
           (small_list (pair (int_range 0 0x7FFF) bool)))
       (fun (pl, rp, stream) ->
         let placement = List.nth all_placements (pl mod 3) in
         let replacement = List.nth all_replacements rp in
         let c = make_cache ~placement ~replacement () in
         let writes = ref 0 in
         List.iter
           (fun (addr, write) ->
             if write then incr writes;
             ignore (P.Cache.access c ~addr ~write))
           stream;
         (* [stats] itself raises if hits + misses <> accesses *)
         let s = P.Cache.stats c in
         s.P.Cache.accesses = List.length stream
         && s.P.Cache.hits + s.P.Cache.misses = s.P.Cache.accesses
         && s.P.Cache.write_throughs = !writes))

let test_probe_no_side_effect () =
  let c = make_cache () in
  checkb "probe misses" true (P.Cache.probe c ~addr:0x3000 = P.Cache.Miss);
  checkb "probe did not allocate" true (P.Cache.probe c ~addr:0x3000 = P.Cache.Miss);
  let s = P.Cache.stats c in
  checki "probe not counted" 0 (s.P.Cache.hits + s.P.Cache.misses)

let test_flush_invalidates () =
  let c = make_cache () in
  ignore (P.Cache.access c ~addr:0x1000 ~write:false);
  P.Cache.flush c;
  checkb "flushed line misses" true (P.Cache.access c ~addr:0x1000 ~write:false = P.Cache.Miss)

let test_modulo_placement_layout_function () =
  let c = make_cache () in
  checki "set of addr 0" 0 (P.Cache.set_of_addr c 0);
  checki "set of line 17" 1 (P.Cache.set_of_addr c (17 * 32));
  (* contiguous lines hit distinct sets *)
  let sets = List.init 16 (fun i -> P.Cache.set_of_addr c (i * 32)) in
  checki "16 distinct sets" 16 (List.length (List.sort_uniq compare sets))

let test_random_modulo_preserves_window_spread () =
  (* key property of random modulo (DAC'16): lines within one window (equal
     tag) still occupy pairwise distinct sets *)
  List.iter
    (fun seed ->
      let c = make_cache ~placement:P.Config.Random_modulo ~seed () in
      let window_base = 4096 * 7 in
      let sets = List.init 16 (fun i -> P.Cache.set_of_addr c (window_base + (i * 32))) in
      checki "distinct sets within window" 16 (List.length (List.sort_uniq compare sets)))
    [ 1L; 2L; 3L; 42L ]

let test_random_modulo_changes_across_flush () =
  let c = make_cache ~placement:P.Config.Random_modulo () in
  let observe () = List.init 16 (fun i -> P.Cache.set_of_addr c (i * 32 * 17)) in
  let before = observe () in
  (* several flushes: mapping should change at least once *)
  let changed = ref false in
  for _ = 1 to 8 do
    P.Cache.flush c;
    if observe () <> before then changed := true
  done;
  checkb "mapping reseeded by flush" true !changed

let test_modulo_stable_across_flush () =
  let c = make_cache ~placement:P.Config.Modulo () in
  let observe () = List.init 16 (fun i -> P.Cache.set_of_addr c (i * 32 * 17)) in
  let before = observe () in
  P.Cache.flush c;
  checkb "modulo mapping fixed" true (observe () = before)

let test_hash_random_spreads =
  qtest
    (QCheck.Test.make ~name:"hash placement spreads lines" ~count:20 QCheck.int64
       (fun seed ->
         let c = make_cache ~placement:P.Config.Hash_random ~seed () in
         (* 256 consecutive lines over 16 sets: every set should be used *)
         let used = Array.make 16 false in
         for i = 0 to 255 do
           used.(P.Cache.set_of_addr c (i * 32)) <- true
         done;
         Array.for_all Fun.id used))

let test_replacement_round_robin () =
  let c = make_cache ~replacement:P.Config.Round_robin () in
  let addr i = i * 16 * 32 in
  (* fill both ways of set 0 with lines 0,1; then line 2 evicts way 0 (line
     0); then accessing line 1 still hits, line 0 misses. *)
  ignore (P.Cache.access c ~addr:(addr 0) ~write:false);
  ignore (P.Cache.access c ~addr:(addr 1) ~write:false);
  ignore (P.Cache.access c ~addr:(addr 2) ~write:false);
  checkb "line1 survives" true (P.Cache.probe c ~addr:(addr 1) = P.Cache.Hit);
  checkb "line0 evicted" true (P.Cache.probe c ~addr:(addr 0) = P.Cache.Miss)

let test_replacement_random_eventually_evicts_any_way () =
  (* with random replacement, both victims are eventually chosen *)
  let evicted0 = ref false and evicted1 = ref false in
  for seed = 1 to 20 do
    let c = make_cache ~replacement:P.Config.Random_replacement ~seed:(Int64.of_int seed) () in
    let addr i = i * 16 * 32 in
    ignore (P.Cache.access c ~addr:(addr 0) ~write:false);
    ignore (P.Cache.access c ~addr:(addr 1) ~write:false);
    ignore (P.Cache.access c ~addr:(addr 2) ~write:false);
    if P.Cache.probe c ~addr:(addr 0) = P.Cache.Miss then evicted0 := true;
    if P.Cache.probe c ~addr:(addr 1) = P.Cache.Miss then evicted1 := true
  done;
  checkb "way holding line0 chosen sometimes" true !evicted0;
  checkb "way holding line1 chosen sometimes" true !evicted1

(* Differential check: the modulo+LRU cache must agree, access by access,
   with an obviously-correct reference simulator (per-set list of lines in
   recency order). *)
let reference_lru_trace ~sets ~ways ~line_bytes reads =
  let table = Array.make sets [] in
  List.map
    (fun addr ->
      let line = addr / line_bytes in
      let set = line mod sets in
      let entry = table.(set) in
      if List.mem line entry then begin
        table.(set) <- line :: List.filter (fun l -> l <> line) entry;
        P.Cache.Hit
      end
      else begin
        let kept = if List.length entry >= ways then List.filteri (fun i _ -> i < ways - 1) entry else entry in
        table.(set) <- line :: kept;
        P.Cache.Miss
      end)
    reads

let test_cache_differential_lru =
  qtest
    (QCheck.Test.make ~name:"modulo+LRU cache == reference model" ~count:200
       QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 255))
       (fun line_indices ->
         let addrs = List.map (fun i -> i * 32) line_indices in
         let c = make_cache () in
         let got = List.map (fun addr -> P.Cache.access c ~addr ~write:false) addrs in
         let expected = reference_lru_trace ~sets:16 ~ways:2 ~line_bytes:32 addrs in
         got = expected))

let test_cache_hit_after_access_any_policy =
  qtest
    (QCheck.Test.make ~name:"read-after-read hits under every policy" ~count:100
       QCheck.(pair int64 (list_of_size (Gen.int_range 1 100) (int_range 0 4095)))
       (fun (seed, raw) ->
         List.for_all
           (fun placement ->
             List.for_all
               (fun replacement ->
                 let c = make_cache ~placement ~replacement ~seed () in
                 List.for_all
                   (fun i ->
                     let addr = i * 32 in
                     ignore (P.Cache.access c ~addr ~write:false);
                     (* immediate re-read of the same line always hits *)
                     P.Cache.access c ~addr ~write:false = P.Cache.Hit)
                   raw)
               all_replacements)
           all_placements))

(* ------------------------------------------------------------------ *)
(* TLB *)

let make_tlb ?(entries = 4) ?(replacement = P.Config.Lru) () =
  P.Tlb.create ~entries ~page_bytes:4096 ~replacement ~prng:(Prng.create 9L)

let test_tlb_hit_after_miss () =
  let t = make_tlb () in
  checkb "miss" true (P.Tlb.access t ~addr:0x5000 = P.Tlb.Miss);
  checkb "hit same page" true (P.Tlb.access t ~addr:0x5FFF = P.Tlb.Hit);
  checkb "miss other page" true (P.Tlb.access t ~addr:0x6000 = P.Tlb.Miss)

let test_tlb_lru_eviction () =
  let t = make_tlb ~entries:2 () in
  ignore (P.Tlb.access t ~addr:0x1000);
  ignore (P.Tlb.access t ~addr:0x2000);
  ignore (P.Tlb.access t ~addr:0x1000);
  (* page 1 more recent *)
  ignore (P.Tlb.access t ~addr:0x3000);
  (* evicts page 2 *)
  checkb "page1 survives" true (P.Tlb.access t ~addr:0x1000 = P.Tlb.Hit);
  checkb "page2 evicted" true (P.Tlb.access t ~addr:0x2000 = P.Tlb.Miss)

let test_tlb_flush () =
  let t = make_tlb () in
  ignore (P.Tlb.access t ~addr:0x1000);
  P.Tlb.flush t;
  checkb "flushed" true (P.Tlb.access t ~addr:0x1000 = P.Tlb.Miss)

let test_tlb_stats () =
  let t = make_tlb () in
  ignore (P.Tlb.access t ~addr:0x1000);
  ignore (P.Tlb.access t ~addr:0x1000);
  let s = P.Tlb.stats t in
  checki "hits" 1 s.P.Tlb.hits;
  checki "misses" 1 s.P.Tlb.misses

(* ------------------------------------------------------------------ *)
(* FPU *)

let fpu mode = P.Fpu.create ~mode ~latencies:P.Config.default_latencies

let test_fpu_short_ops_fixed () =
  List.iter
    (fun mode ->
      let f = fpu mode in
      checki "fadd" P.Config.default_latencies.P.Config.fp_short
        (P.Fpu.latency f I.Fadd_op ~x:1.0 ~y:2.0);
      checki "fmul" P.Config.default_latencies.P.Config.fp_short
        (P.Fpu.latency f I.Fmul_op ~x:1.0 ~y:2.0))
    [ P.Config.Value_dependent; P.Config.Worst_case_fixed ]

let test_fpu_worst_case_mode_constant () =
  let f = fpu P.Config.Worst_case_fixed in
  let l1 = P.Fpu.latency f I.Fdiv_op ~x:1.0 ~y:3.0 in
  let l2 = P.Fpu.latency f I.Fdiv_op ~x:123.456 ~y:0.001 in
  checki "fdiv constant" l1 l2;
  checki "fdiv is worst case" P.Fpu.worst_case_fdiv l1;
  checki "fsqrt is worst case" P.Fpu.worst_case_fsqrt
    (P.Fpu.latency f I.Fsqrt_op ~x:2.0 ~y:0.0)

let test_fpu_value_dependent_varies () =
  let f = fpu P.Config.Value_dependent in
  let latencies =
    List.map
      (fun (x, y) -> P.Fpu.latency f I.Fdiv_op ~x ~y)
      [ (1.0, 2.0); (1.0, 3.0); (7.13, 0.39); (5.5, 1.5); (1e10, 3.7) ]
  in
  checkb "fdiv latency varies with operands" true
    (List.length (List.sort_uniq compare latencies) > 1)

let test_fpu_value_dependent_bounded_by_worst () =
  let f = fpu P.Config.Value_dependent in
  let g = Prng.create 31L in
  for _ = 1 to 2000 do
    let x = Prng.gaussian g *. (10. ** float_of_int (Prng.int_below g 6)) in
    let y = Prng.gaussian g *. (10. ** float_of_int (Prng.int_below g 6)) in
    let ld = P.Fpu.latency f I.Fdiv_op ~x ~y in
    checkb "fdiv <= worst" true (ld <= P.Fpu.worst_case_fdiv && ld >= 1);
    let ls = P.Fpu.latency f I.Fsqrt_op ~x:(Float.abs x) ~y:0. in
    checkb "fsqrt <= worst" true (ls <= P.Fpu.worst_case_fsqrt && ls >= 1)
  done

let test_fpu_fast_paths () =
  let f = fpu P.Config.Value_dependent in
  checkb "power-of-two divisor fast" true
    (P.Fpu.latency f I.Fdiv_op ~x:7.3 ~y:2.0
    < P.Fpu.latency f I.Fdiv_op ~x:7.3 ~y:3.0);
  checkb "sqrt of one fast" true
    (P.Fpu.latency f I.Fsqrt_op ~x:1.0 ~y:0.
    < P.Fpu.latency f I.Fsqrt_op ~x:1.7 ~y:0.)

(* ------------------------------------------------------------------ *)
(* DRAM *)

let dram mode =
  P.Dram.create ~mode ~banks:4 ~row_bytes:2048 ~latencies:P.Config.default_latencies

let test_dram_row_hit_miss () =
  let d = dram P.Config.Open_page in
  let lat = P.Config.default_latencies in
  checki "first access misses row" lat.P.Config.dram_row_miss (P.Dram.access d ~addr:0x1000);
  checki "same row hits" lat.P.Config.dram_row_hit (P.Dram.access d ~addr:0x1100);
  let s = P.Dram.stats d in
  checki "row hits" 1 s.P.Dram.row_hits;
  checki "row misses" 1 s.P.Dram.row_misses

let test_dram_banks_independent () =
  let d = dram P.Config.Open_page in
  let lat = P.Config.default_latencies in
  ignore (P.Dram.access d ~addr:0);
  (* bank 0 row 0 *)
  ignore (P.Dram.access d ~addr:2048);
  (* bank 1 row 1 *)
  checki "bank0 row still open" lat.P.Config.dram_row_hit (P.Dram.access d ~addr:64)

let test_dram_fixed_mode () =
  let d = dram P.Config.Fixed_worst in
  let lat = P.Config.default_latencies in
  for i = 0 to 20 do
    checki "constant latency" lat.P.Config.dram_fixed (P.Dram.access d ~addr:(i * 512))
  done

let test_dram_flush_closes_rows () =
  let d = dram P.Config.Open_page in
  ignore (P.Dram.access d ~addr:0x1000);
  P.Dram.flush d;
  let lat = P.Config.default_latencies in
  checki "row closed" lat.P.Config.dram_row_miss (P.Dram.access d ~addr:0x1000)

(* ------------------------------------------------------------------ *)
(* Bus *)

let test_bus_no_contention () =
  let b = P.Bus.create ~latencies:P.Config.default_latencies ~contenders:[] in
  let g = Prng.create 7L in
  for _ = 1 to 50 do
    checki "bare transfer" P.Config.default_latencies.P.Config.bus_transfer
      (P.Bus.transaction b ~prng:g)
  done;
  checki "counted" 50 (P.Bus.count b)

let test_bus_full_pressure () =
  let b = P.Bus.create ~latencies:P.Config.default_latencies ~contenders:[ 1.; 1.; 1. ] in
  let g = Prng.create 7L in
  let t = P.Config.default_latencies.P.Config.bus_transfer in
  checki "worst-case arbitration" (4 * t) (P.Bus.transaction b ~prng:g)

let test_bus_partial_pressure_bounded () =
  let b = P.Bus.create ~latencies:P.Config.default_latencies ~contenders:[ 0.5 ] in
  let g = Prng.create 7L in
  let t = P.Config.default_latencies.P.Config.bus_transfer in
  for _ = 1 to 200 do
    let l = P.Bus.transaction b ~prng:g in
    checkb "within round-robin bound" true (l = t || l = 2 * t)
  done

(* ------------------------------------------------------------------ *)
(* Core timing model *)

(* Working set slightly above DL1 capacity (2500 * 8B = 20KB vs 16KB), swept
   twice: replacement and placement decisions then matter, so the
   randomized platform's timing genuinely depends on its seed. *)
let toy_program () =
  let b = Builder.create ~name:"toy" in
  Builder.declare_data b ~symbol:"v" ~elements:2500;
  Builder.label b "main";
  Builder.counted_loop b ~counter:6 ~from_:0 ~below:2 (fun () ->
      Builder.counted_loop b ~counter:4 ~from_:0 ~below:2500 (fun () ->
          Builder.emit b (I.Fld (0, Builder.at ~index_reg:4 "v"));
          Builder.emit b (I.Fli (1, 1.5));
          Builder.emit b (I.Fmul (0, 0, 1));
          Builder.emit b (I.Fst (0, Builder.at ~index_reg:4 "v"))));
  Builder.emit b (I.Fld (0, Builder.at "v"));
  Builder.emit b (I.Fsqrt (0, 0));
  Builder.emit b (I.Fdiv (0, 0, 1));
  Builder.emit b I.Halt;
  Builder.build b ~entry:"main"

let run_once ~config ~seed ?(layout_seed = None) () =
  let p = toy_program () in
  let layout =
    match layout_seed with
    | None -> Layout.sequential p
    | Some s -> Layout.scrambled ~seed:s p
  in
  let core = P.Core_sim.create ~config ~seed () in
  P.Core_sim.run_program core ~program:p ~layout ~memory:(Memory.create p)

let test_core_deterministic_per_seed () =
  List.iter
    (fun config ->
      let m1 = run_once ~config ~seed:5L () in
      let m2 = run_once ~config ~seed:5L () in
      checki "same seed same cycles" (P.Metrics.cycles m1) (P.Metrics.cycles m2))
    [ P.Config.deterministic; P.Config.mbpta_compliant ]

let test_det_insensitive_to_seed () =
  let m1 = run_once ~config:P.Config.deterministic ~seed:5L () in
  let m2 = run_once ~config:P.Config.deterministic ~seed:99L () in
  checki "DET ignores platform seed" (P.Metrics.cycles m1) (P.Metrics.cycles m2)

let test_rand_sensitive_to_seed () =
  let cycles seed = P.Metrics.cycles (run_once ~config:P.Config.mbpta_compliant ~seed ()) in
  let values = List.map cycles [ 1L; 2L; 3L; 4L; 5L; 6L ] in
  checkb "RAND varies with seed" true (List.length (List.sort_uniq compare values) > 1)

let test_det_sensitive_to_layout () =
  (* the memory layout changes DET timing (the effect random placement
     removes) *)
  let cycles layout_seed =
    P.Metrics.cycles
      (run_once ~config:P.Config.deterministic ~seed:1L ~layout_seed:(Some layout_seed) ())
  in
  let values = List.map cycles [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ] in
  checkb "DET varies with layout" true (List.length (List.sort_uniq compare values) > 1)

let test_metrics_accounting () =
  let m = run_once ~config:P.Config.deterministic ~seed:1L () in
  checkb "instructions counted" true (m.P.Metrics.instructions > 300);
  checkb "cycles at least instructions" true (m.P.Metrics.cycles >= m.P.Metrics.instructions);
  checki "fp long ops" 2 m.P.Metrics.fp_long_ops;
  checkb "dl1 seen accesses" true (m.P.Metrics.dl1_hits + m.P.Metrics.dl1_misses >= 128);
  checkb "il1 misses bounded by lines" true (m.P.Metrics.il1_misses < 64);
  checkb "bus transactions = il1+dl1 read misses" true (m.P.Metrics.bus_transactions > 0)

let test_reset_run_clears_state () =
  let p = toy_program () in
  let layout = Layout.sequential p in
  let core = P.Core_sim.create ~config:P.Config.deterministic ~seed:1L () in
  let m1 = P.Core_sim.run_program core ~program:p ~layout ~memory:(Memory.create p) in
  let m2 = P.Core_sim.run_program core ~program:p ~layout ~memory:(Memory.create p) in
  checki "flush between runs restores timing" (P.Metrics.cycles m1) (P.Metrics.cycles m2)

let test_advance () =
  let core = P.Core_sim.create ~config:P.Config.deterministic ~seed:1L () in
  P.Core_sim.reset_run core;
  P.Core_sim.advance core 100;
  checki "advance adds cycles" 100 (P.Core_sim.cycles core)

(* ------------------------------------------------------------------ *)
(* SoC *)

let test_soc_contention_slows () =
  let p = toy_program () in
  let layout = Layout.sequential p in
  let run co_runners =
    let soc = P.Soc.create ~config:P.Config.mbpta_compliant ~seed:3L ~co_runners in
    P.Metrics.cycles (P.Soc.run_program soc ~program:p ~layout ~memory:(Memory.create p))
  in
  let alone = run [] in
  let idle = run [ P.Soc.Idle; P.Soc.Idle; P.Soc.Idle ] in
  let contended = run [ P.Soc.Memory_hog 1.; P.Soc.Memory_hog 1.; P.Soc.Memory_hog 1. ] in
  checki "idle co-runners harmless" alone idle;
  checkb "hogs slow core 0 down" true (contended > alone)

let test_soc_rejects_too_many () =
  checkb "max 3 co-runners" true
    (try
       ignore
         (P.Soc.create ~config:P.Config.deterministic ~seed:1L
            ~co_runners:[ P.Soc.Idle; P.Soc.Idle; P.Soc.Idle; P.Soc.Idle ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "repro_platform"
    [
      ( "cache",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "invalid geometry" `Quick test_geometry_invalid;
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "capacity fits" `Quick test_capacity_within_bounds;
          Alcotest.test_case "conflict thrash (modulo+lru)" `Quick
            test_conflict_eviction_modulo_lru;
          Alcotest.test_case "write-through no-allocate" `Quick test_write_through_no_allocate;
          test_stats_invariant_mixed_stream;
          Alcotest.test_case "probe side-effect free" `Quick test_probe_no_side_effect;
          Alcotest.test_case "flush invalidates" `Quick test_flush_invalidates;
          Alcotest.test_case "modulo placement" `Quick test_modulo_placement_layout_function;
          Alcotest.test_case "random modulo window spread" `Quick
            test_random_modulo_preserves_window_spread;
          Alcotest.test_case "random modulo reseeds on flush" `Quick
            test_random_modulo_changes_across_flush;
          Alcotest.test_case "modulo stable across flush" `Quick test_modulo_stable_across_flush;
          test_hash_random_spreads;
          Alcotest.test_case "round robin" `Quick test_replacement_round_robin;
          Alcotest.test_case "random replacement" `Quick
            test_replacement_random_eventually_evicts_any_way;
          test_cache_differential_lru;
          test_cache_hit_after_access_any_policy;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit after miss" `Quick test_tlb_hit_after_miss;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
          Alcotest.test_case "stats" `Quick test_tlb_stats;
        ] );
      ( "fpu",
        [
          Alcotest.test_case "short ops fixed" `Quick test_fpu_short_ops_fixed;
          Alcotest.test_case "worst-case mode constant" `Quick
            test_fpu_worst_case_mode_constant;
          Alcotest.test_case "value-dependent varies" `Quick test_fpu_value_dependent_varies;
          Alcotest.test_case "bounded by worst case" `Quick
            test_fpu_value_dependent_bounded_by_worst;
          Alcotest.test_case "fast paths" `Quick test_fpu_fast_paths;
        ] );
      ( "dram",
        [
          Alcotest.test_case "row hit/miss" `Quick test_dram_row_hit_miss;
          Alcotest.test_case "banks independent" `Quick test_dram_banks_independent;
          Alcotest.test_case "fixed mode" `Quick test_dram_fixed_mode;
          Alcotest.test_case "flush closes rows" `Quick test_dram_flush_closes_rows;
        ] );
      ( "bus",
        [
          Alcotest.test_case "no contention" `Quick test_bus_no_contention;
          Alcotest.test_case "full pressure" `Quick test_bus_full_pressure;
          Alcotest.test_case "partial pressure bounded" `Quick
            test_bus_partial_pressure_bounded;
        ] );
      ( "core",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_core_deterministic_per_seed;
          Alcotest.test_case "DET seed-insensitive" `Quick test_det_insensitive_to_seed;
          Alcotest.test_case "RAND seed-sensitive" `Quick test_rand_sensitive_to_seed;
          Alcotest.test_case "DET layout-sensitive" `Quick test_det_sensitive_to_layout;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "reset_run clears state" `Quick test_reset_run_clears_state;
          Alcotest.test_case "advance" `Quick test_advance;
        ] );
      ( "soc",
        [
          Alcotest.test_case "contention slows" `Quick test_soc_contention_slows;
          Alcotest.test_case "rejects too many" `Quick test_soc_rejects_too_many;
        ] );
    ]
