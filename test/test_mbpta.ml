(* Tests for repro_mbpta: the i.i.d. gate, the end-to-end protocol on
   synthetic data and its failure paths, the MBTA baseline, per-path
   analysis, plot rendering, and a scaled-down integration run of the whole
   campaign on the TVCA workload. *)

module Prng = Repro_rng.Prng
module S = Repro_stats
module E = Repro_evt
module M = Repro_mbpta
module P = Repro_platform
module T = Repro_tvca

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf tol = Alcotest.check (Alcotest.float tol)
let prng seed = Prng.create seed

let gumbel_sample g ~mu ~beta n =
  let d = S.Distribution.Gumbel.create ~mu ~beta in
  Array.init n (fun _ -> S.Distribution.Gumbel.sample d g)

(* ------------------------------------------------------------------ *)
(* i.i.d. gate *)

let test_iid_accepts_iid () =
  let g = prng 105L in
  let xs = gumbel_sample g ~mu:1000. ~beta:20. 2000 in
  let r = M.Iid.check xs in
  checkb "accepted" true r.M.Iid.accepted

let test_iid_rejects_autocorrelated () =
  let g = prng 202L in
  let n = 2000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.8 *. xs.(i - 1)) +. Prng.gaussian g
  done;
  let r = M.Iid.check xs in
  checkb "rejected" false r.M.Iid.accepted;
  checkb "ljung-box is the reason" false r.M.Iid.ljung_box.S.Ljung_box.independent

let test_iid_rejects_distribution_drift () =
  (* even-indexed runs drawn from a shifted distribution *)
  let g = prng 303L in
  let xs =
    Array.init 2000 (fun i ->
        Prng.gaussian g +. if i mod 2 = 0 then 0. else 0.4)
  in
  let r = M.Iid.check xs in
  checkb "rejected" false r.M.Iid.accepted;
  checkb "KS is the reason" false r.M.Iid.kolmogorov_smirnov.S.Ks.same_distribution

let test_iid_alpha_respected () =
  let g = prng 404L in
  let xs = gumbel_sample g ~mu:0. ~beta:1. 1000 in
  let strict = M.Iid.check ~alpha:0.9999 xs in
  (* with alpha ~ 1 almost any sample is rejected *)
  checkb "extreme alpha rejects" false strict.M.Iid.accepted

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_happy_path () =
  let g = prng 505L in
  let xs = gumbel_sample g ~mu:10_000. ~beta:150. 3000 in
  match M.Protocol.analyze xs with
  | Error f -> Alcotest.failf "unexpected failure: %a" M.Protocol.pp_failure f
  | Ok a ->
      checkb "iid ok" true a.M.Protocol.iid.M.Iid.accepted;
      checki "block size" 64 a.M.Protocol.block_size;
      checkb "converged" true
        (match a.M.Protocol.convergence with
        | Some c -> c.E.Convergence.converged
        | None -> false);
      (* the pWCET ladder is monotone and above the sample median *)
      let table = M.Protocol.pwcet_table a in
      checki "ten cutoffs" 10 (List.length table);
      let median = S.Descriptive.median xs in
      List.iter (fun (_, v) -> checkb "above median" true (v > median)) table

let test_protocol_not_enough_runs () =
  match M.Protocol.analyze [| 1.; 2.; 3. |] with
  | Error (M.Protocol.Not_enough_runs { have; need }) ->
      checki "have" 3 have;
      checkb "need sensible" true (need >= 100)
  | Error _ | Ok _ -> Alcotest.fail "expected Not_enough_runs"

let test_protocol_iid_failure_reported () =
  let g = prng 606L in
  let n = 1000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.9 *. xs.(i - 1)) +. Prng.gaussian g
  done;
  (* keep the sample in the valid (non-negative) domain so the
     autocorrelation, not the sample validator, is what trips *)
  let lo = Array.fold_left Float.min xs.(0) xs in
  let xs = Array.map (fun v -> v -. lo) xs in
  match M.Protocol.analyze xs with
  | Error (M.Protocol.Iid_rejected _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Iid_rejected"

let test_protocol_tail_choices () =
  let g = prng 707L in
  let xs = gumbel_sample g ~mu:500. ~beta:25. 2000 in
  List.iter
    (fun tail ->
      let options = { M.Protocol.default_options with M.Protocol.tail } in
      match M.Protocol.analyze ~options xs with
      | Ok a ->
          let v = E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9 in
          (* all tail models should land in the same region *)
          checkb "estimate plausible" true (v > 500. && v < 2000.)
      | Error f -> Alcotest.failf "tail failed: %a" M.Protocol.pp_failure f)
    [ M.Protocol.Gumbel; M.Protocol.Gev; M.Protocol.Pot; M.Protocol.Exponential_pot ]

let test_protocol_explicit_block_size () =
  let g = prng 808L in
  let xs = gumbel_sample g ~mu:100. ~beta:5. 1000 in
  let options = { M.Protocol.default_options with M.Protocol.block_size = Some 10 } in
  match M.Protocol.analyze ~options xs with
  | Ok a -> checki "block honoured" 10 a.M.Protocol.block_size
  | Error f -> Alcotest.failf "failed: %a" M.Protocol.pp_failure f

let test_protocol_collect_and_analyze () =
  let g = prng 909L in
  let d = S.Distribution.Gumbel.create ~mu:100. ~beta:5. in
  let measure _ = S.Distribution.Gumbel.sample d g in
  let options = { M.Protocol.default_options with M.Protocol.check_convergence = false } in
  match M.Protocol.collect_and_analyze ~options ~runs:600 ~measure () with
  | Ok a -> checki "sample size" 600 (Array.length a.M.Protocol.sample)
  | Error f -> Alcotest.failf "failed: %a" M.Protocol.pp_failure f

let test_standard_cutoffs () =
  checki "ten decades" 10 (List.length M.Protocol.standard_cutoffs);
  checkf 0. "starts at 1e-6" 1e-6 (List.hd M.Protocol.standard_cutoffs)

let test_protocol_degenerate_constant_sample () =
  (* A jitterless platform produces (near-)constant execution times; the
     protocol must return a defined result, not crash. *)
  let xs = Array.make 500 12345. in
  let options =
    {
      M.Protocol.default_options with
      M.Protocol.check_convergence = false;
      M.Protocol.gate_on_iid = false;
    }
  in
  match M.Protocol.analyze ~options xs with
  | Ok a ->
      checkb "no tail diagnostic on constant data" true
        (a.M.Protocol.tail_diagnostic = None);
      let v = E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-12 in
      checkb "pWCET collapses to the constant" true (Float.abs (v -. 12345.) < 1.)
  | Error f -> Alcotest.failf "degenerate sample crashed the protocol: %a" M.Protocol.pp_failure f

let test_iid_on_constant_sample () =
  let xs = Array.make 200 7. in
  let r = M.Iid.check xs in
  checkb "constant sample cannot be rejected" true r.M.Iid.accepted

(* ------------------------------------------------------------------ *)
(* MBTA baseline *)

let test_mbta_bound () =
  let r = M.Mbta.bound ~engineering_factor:1.5 [| 10.; 40.; 20. |] in
  checkf 0. "hwm" 40. r.M.Mbta.high_watermark;
  checkf 1e-12 "bound" 60. r.M.Mbta.bound;
  checki "n" 3 r.M.Mbta.sample_size

let test_mbta_default_factor () =
  let r = M.Mbta.bound [| 100. |] in
  checkf 1e-12 "default +50%" 150. r.M.Mbta.bound

let test_mbta_sensitivity () =
  let s = M.Mbta.sensitivity [| 100. |] ~factors:[ 1.2; 1.35; 1.5 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "sweep"
    [ (1.2, 120.); (1.35, 135.); (1.5, 150.) ]
    s

(* ------------------------------------------------------------------ *)
(* Per-path analysis *)

let test_path_analysis_groups_and_maxes () =
  let g = prng 1012L in
  (* two synthetic paths with different tail locations *)
  let runs = 1200 in
  let measurements = Array.make runs 0. in
  let signatures = Array.make runs 0 in
  for i = 0 to runs - 1 do
    let path = if i mod 3 = 0 then 1 else 2 in
    let mu = if path = 1 then 2000. else 1000. in
    signatures.(i) <- path;
    measurements.(i) <-
      S.Distribution.Gumbel.sample (S.Distribution.Gumbel.create ~mu ~beta:20.) g
  done;
  let options = { M.Protocol.default_options with M.Protocol.check_convergence = false } in
  let t = M.Path_analysis.analyze ~options ~measurements ~signatures () in
  checki "two paths" 2 (List.length t.M.Path_analysis.paths);
  checkf 1e-9 "full coverage" 1. t.M.Path_analysis.analyzed_fraction;
  (match M.Path_analysis.pwcet_estimate t ~cutoff_probability:1e-9 with
  | Some v -> checkb "max across paths comes from slow path" true (v > 2000.)
  | None -> Alcotest.fail "expected estimate");
  (* most frequent path listed first *)
  match t.M.Path_analysis.paths with
  | first :: _ -> checki "frequent first" 2 first.M.Path_analysis.signature
  | [] -> Alcotest.fail "no paths"

let test_path_analysis_rare_path_residual () =
  let g = prng 1111L in
  let runs = 500 in
  let measurements =
    Array.init runs (fun _ ->
        S.Distribution.Gumbel.sample (S.Distribution.Gumbel.create ~mu:100. ~beta:5.) g)
  in
  (* 10 runs on a rare path *)
  let signatures = Array.init runs (fun i -> if i < 10 then 7 else 8) in
  let t = M.Path_analysis.analyze ~measurements ~signatures () in
  checkb "rare path not analyzed" true
    (List.exists
       (fun p ->
         p.M.Path_analysis.signature = 7
         &&
         match p.M.Path_analysis.analysis with
         | Error (M.Protocol.Not_enough_runs _) -> true
         | Error _ | Ok _ -> false)
       t.M.Path_analysis.paths);
  checkb "coverage below 1" true (t.M.Path_analysis.analyzed_fraction < 1.)

(* ------------------------------------------------------------------ *)
(* Schedulability *)

let mk_task name period budget =
  { M.Schedulability.name; period; deadline = period; budget }

let test_required_cutoff () =
  checkf 1e-20 "simple division" 1e-12
    (M.Schedulability.required_cutoff ~activations_per_hour:1e3
       ~target_failures_per_hour:1e-9);
  checkf 0. "clamped at 1" 1.
    (M.Schedulability.required_cutoff ~activations_per_hour:1.
       ~target_failures_per_hour:10.)

let test_rta_classic_example () =
  (* Textbook task set: C=(1,2,3), T=(4,6,10): R = 1, 3, 10. *)
  let tasks = [ mk_task "t1" 4. 1.; mk_task "t2" 6. 2.; mk_task "t3" 10. 3. ] in
  match M.Schedulability.response_times tasks with
  | [ r1; r2; r3 ] ->
      checkf 0. "r1" 1. r1.M.Schedulability.response_time;
      checkf 0. "r2" 3. r2.M.Schedulability.response_time;
      checkf 0. "r3" 10. r3.M.Schedulability.response_time;
      checkb "all meet deadlines" true (M.Schedulability.schedulable tasks)
  | _ -> Alcotest.fail "expected three responses"

let test_rta_unschedulable () =
  let tasks = [ mk_task "hog" 10. 9.; mk_task "starved" 20. 5. ] in
  checkb "overloaded set fails" false (M.Schedulability.schedulable tasks);
  match M.Schedulability.response_times tasks with
  | [ r1; r2 ] ->
      checkb "hog ok" true r1.M.Schedulability.meets_deadline;
      checkb "starved misses" false r2.M.Schedulability.meets_deadline
  | _ -> Alcotest.fail "expected two responses"

let test_utilization () =
  let tasks = [ mk_task "a" 10. 2.; mk_task "b" 20. 5. ] in
  checkf 1e-12 "U" 0.45 (M.Schedulability.utilization tasks)

let test_overrun_bound () =
  let tasks = [ mk_task "a" 10. 1.; mk_task "b" 10. 1. ] in
  checkf 1e-18 "union bound" 2e-6
    (M.Schedulability.overrun_rate_bound tasks ~cutoff:1e-9
       ~activations_per_hour:(fun _ -> 1000.))

(* ------------------------------------------------------------------ *)
(* Plot rendering *)

let synthetic_analysis () =
  let g = prng 1212L in
  let xs = gumbel_sample g ~mu:10_000. ~beta:150. 2000 in
  match M.Protocol.analyze xs with
  | Ok a -> a
  | Error f -> Alcotest.failf "setup failed: %a" M.Protocol.pp_failure f

let test_exceedance_plot_renders () =
  let a = synthetic_analysis () in
  let plot = M.Ascii_plot.exceedance_plot a.M.Protocol.curve in
  checkb "has observations" true (String.contains plot 'o');
  checkb "has projection" true (String.contains plot '*');
  (* one row per decade plus header/footer *)
  let lines = String.split_on_char '\n' plot in
  checkb "15 decades plotted" true (List.length lines >= 17)

let test_budget_of_curve_matches_estimate () =
  let a = synthetic_analysis () in
  let direct = E.Pwcet.estimate a.M.Protocol.curve ~cutoff_probability:1e-9 in
  checkf 0. "alias" direct
    (M.Schedulability.budget_of_curve a.M.Protocol.curve ~cutoff_probability:1e-9)

let test_convergence_plot_renders () =
  let a = synthetic_analysis () in
  match a.M.Protocol.convergence with
  | Some c ->
      let plot = M.Ascii_plot.convergence_plot c.E.Convergence.history in
      checkb "non-empty" true (String.length plot > 0)
  | None -> Alcotest.fail "expected convergence"

(* ------------------------------------------------------------------ *)
(* Export *)

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let test_export_samples_csv () =
  let csv = M.Export.samples_csv [| 10.; 20.; 30. |] in
  checki "header + 3 rows" 4 (count_lines csv);
  checkb "header" true (String.length csv > 12 && String.sub csv 0 12 = "index,cycles")

let test_export_samples_csv_label () =
  let csv = M.Export.samples_csv ~label:"DET" [| 1. |] in
  checkb "label column" true
    (List.exists (fun l -> l = "0,1,DET") (String.split_on_char '\n' csv))

let test_export_curve_csv () =
  let a = synthetic_analysis () in
  let csv = M.Export.curve_csv a.M.Protocol.curve in
  checkb "rows present" true (count_lines csv > 20)

let test_export_ecdf_csv () =
  let csv = M.Export.ecdf_csv [| 1.; 2.; 3.; 4. |] in
  (* 4 distinct values, max dropped (exceedance 0) -> 3 rows + header *)
  checki "rows" 4 (count_lines csv)

let test_export_roundtrip_file () =
  let path = Filename.temp_file "repro_export" ".csv" in
  M.Export.to_file ~path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  checkb "written" true (line = "a,b")

let test_qq_plot_renders () =
  let a = synthetic_analysis () in
  let curve = a.M.Protocol.curve in
  let maxima =
    E.Block_maxima.extract ~block_size:(E.Pwcet.block_size curve) a.M.Protocol.sample
  in
  match E.Pwcet.model curve with
  | E.Pwcet.Gumbel_tail g ->
      let plot =
        M.Ascii_plot.qq_plot ~data:maxima
          ~quantile:(S.Distribution.Gumbel.quantile g)
          ()
      in
      checkb "has points" true (String.contains plot '+');
      checkb "has diagonal" true (String.contains plot '.')
  | E.Pwcet.Gev_tail _ | E.Pwcet.Pot_tail _ -> Alcotest.fail "expected Gumbel"

(* ------------------------------------------------------------------ *)
(* Report + campaign integration on the real workload (scaled down) *)

let test_campaign_on_tvca () =
  let frames = 4 in
  let det = T.Experiment.create ~frames ~config:P.Config.deterministic ~base_seed:1L () in
  let rand = T.Experiment.create ~frames ~config:P.Config.mbpta_compliant ~base_seed:1L () in
  let input =
    {
      (M.Campaign.default_input
         ~measure_det:(fun i -> T.Experiment.measure det ~run_index:i)
         ~measure_rand:(fun i -> T.Experiment.measure rand ~run_index:i))
      with
      M.Campaign.runs = 1200;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.convergence_tolerance = 0.02;
        };
    }
  in
  let c =
    match M.Campaign.run input with
    | Ok c -> c
    | Error f -> Alcotest.failf "campaign failed outright: %a" M.Protocol.pp_failure f
  in
  (match c.M.Campaign.analysis with
  | Ok a ->
      checkb "iid accepted on RAND platform" true a.M.Protocol.iid.M.Iid.accepted;
      checkb "curve upper-bounds" true (E.Pwcet.upper_bounds_observations a.M.Protocol.curve)
  | Error f -> Alcotest.failf "campaign analysis failed: %a" M.Protocol.pp_failure f);
  (match c.M.Campaign.comparison with
  | Some cmp ->
      (* E4: averages within a few percent *)
      checkb "DET ~ RAND average" true (Float.abs cmp.M.Report.average_overhead < 0.05);
      (* E3 shape: pWCET at 1e-6 above max observed, below MBTA bound *)
      let p6 = List.assoc 1e-6 cmp.M.Report.pwcet_at in
      checkb "pWCET(1e-6) above max RAND observation" true
        (p6 >= S.Descriptive.max c.M.Campaign.rand_sample);
      checkb "pWCET(1e-6) competitive vs MBTA" true (p6 < cmp.M.Report.mbta.M.Mbta.bound)
  | None -> Alcotest.fail "expected comparison");
  let text = M.Campaign.render c in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "report mentions iid" true (contains ~needle:"i.i.d." text);
  checkb "report has pWCET ladder" true (contains ~needle:"pWCET" text)

let () =
  Alcotest.run "repro_mbpta"
    [
      ( "iid",
        [
          Alcotest.test_case "accepts iid" `Quick test_iid_accepts_iid;
          Alcotest.test_case "rejects autocorrelated" `Quick test_iid_rejects_autocorrelated;
          Alcotest.test_case "rejects drift" `Quick test_iid_rejects_distribution_drift;
          Alcotest.test_case "alpha respected" `Quick test_iid_alpha_respected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "happy path" `Quick test_protocol_happy_path;
          Alcotest.test_case "not enough runs" `Quick test_protocol_not_enough_runs;
          Alcotest.test_case "iid failure" `Quick test_protocol_iid_failure_reported;
          Alcotest.test_case "tail choices" `Quick test_protocol_tail_choices;
          Alcotest.test_case "explicit block size" `Quick test_protocol_explicit_block_size;
          Alcotest.test_case "collect_and_analyze" `Quick test_protocol_collect_and_analyze;
          Alcotest.test_case "degenerate constant sample" `Quick
            test_protocol_degenerate_constant_sample;
          Alcotest.test_case "iid on constant sample" `Quick test_iid_on_constant_sample;
          Alcotest.test_case "standard cutoffs" `Quick test_standard_cutoffs;
        ] );
      ( "mbta",
        [
          Alcotest.test_case "bound" `Quick test_mbta_bound;
          Alcotest.test_case "default factor" `Quick test_mbta_default_factor;
          Alcotest.test_case "sensitivity" `Quick test_mbta_sensitivity;
        ] );
      ( "path-analysis",
        [
          Alcotest.test_case "groups and maxes" `Quick test_path_analysis_groups_and_maxes;
          Alcotest.test_case "rare path residual" `Quick test_path_analysis_rare_path_residual;
        ] );
      ( "schedulability",
        [
          Alcotest.test_case "required cutoff" `Quick test_required_cutoff;
          Alcotest.test_case "classic RTA" `Quick test_rta_classic_example;
          Alcotest.test_case "unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "overrun bound" `Quick test_overrun_bound;
          Alcotest.test_case "budget from curve" `Quick
            test_budget_of_curve_matches_estimate;
        ] );
      ( "plots",
        [
          Alcotest.test_case "exceedance plot" `Quick test_exceedance_plot_renders;
          Alcotest.test_case "convergence plot" `Quick test_convergence_plot_renders;
        ] );
      ( "export",
        [
          Alcotest.test_case "samples csv" `Quick test_export_samples_csv;
          Alcotest.test_case "samples csv label" `Quick test_export_samples_csv_label;
          Alcotest.test_case "curve csv" `Quick test_export_curve_csv;
          Alcotest.test_case "ecdf csv" `Quick test_export_ecdf_csv;
          Alcotest.test_case "file roundtrip" `Quick test_export_roundtrip_file;
          Alcotest.test_case "qq plot" `Quick test_qq_plot_renders;
        ] );
      ( "integration",
        [ Alcotest.test_case "campaign on TVCA" `Slow test_campaign_on_tvca ] );
    ]
