(* Tests for the deterministic domain-parallel execution layer: the static
   sharding invariants of [Parallel.chunks], sequential equivalence of
   [Parallel.init]/[map] at every job count, deterministic exception
   propagation, and the campaign-level property the layer exists for —
   [jobs = 1] and [jobs = N] produce bit-identical samples, analyses and
   resilience reports, including under SEU fault injection. *)

module Prng = Repro_rng.Prng
module M = Repro_mbpta
module P = Repro_platform
module T = Repro_tvca
module R = M.Resilience

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let qtest = QCheck_alcotest.to_alcotest
let job_counts = [ 1; 2; 3; 4; 7; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Sharding invariants *)

let test_chunks_properties =
  qtest
    (QCheck.Test.make ~count:500 ~name:"chunks cover 0..n-1 contiguously"
       QCheck.(pair (int_range 1 32) (int_range 0 300))
       (fun (jobs, n) ->
         let cs = M.Parallel.chunks ~jobs n in
         let lengths_ok =
           List.for_all (fun (_, len) -> len > 0) cs
           &&
           match List.map snd cs with
           | [] -> n = 0
           | lens ->
               let mn = List.fold_left min max_int lens in
               let mx = List.fold_left max 0 lens in
               mx - mn <= 1
         in
         (* contiguous ascending cover: each chunk starts where the
            previous ended, first at 0, last ends at n *)
         let rec cover expected = function
           | [] -> expected = n
           | (lo, len) :: rest -> lo = expected && cover (expected + len) rest
         in
         List.length cs <= jobs && lengths_ok && cover 0 cs))

let test_chunks_explicit () =
  checki "no chunks for n=0" 0 (List.length (M.Parallel.chunks ~jobs:4 0));
  (match M.Parallel.chunks ~jobs:1 10 with
  | [ (0, 10) ] -> ()
  | _ -> Alcotest.fail "jobs=1 must be one chunk");
  (* jobs > n clamps to n singleton chunks *)
  checki "jobs clamped to n" 3 (List.length (M.Parallel.chunks ~jobs:8 3))

(* ------------------------------------------------------------------ *)
(* init / map: sequential equivalence and error propagation *)

let test_init_matches_sequential =
  qtest
    (QCheck.Test.make ~count:200 ~name:"init ~jobs:k = init ~jobs:1 for pure f"
       QCheck.(pair (int_range 1 16) (int_range 0 200))
       (fun (jobs, n) ->
         let f i = (i * 2654435761) land 0xFFFFFF in
         M.Parallel.init ~jobs n f = M.Parallel.init ~jobs:1 n f))

let test_init_sequential_is_ascending () =
  (* jobs=1 is the sequential reference: even a stateful f sees strictly
     ascending indices *)
  let seen = ref [] in
  let _ =
    M.Parallel.init ~jobs:1 50 (fun i ->
        seen := i :: !seen;
        i)
  in
  checkb "ascending order" true (List.rev !seen = List.init 50 Fun.id)

let test_init_edge_cases () =
  checki "n=0" 0 (Array.length (M.Parallel.init ~jobs:4 0 Fun.id));
  checki "n=1" 1 (Array.length (M.Parallel.init ~jobs:8 1 Fun.id));
  checkb "n<0 rejected" true
    (try
       ignore (M.Parallel.init ~jobs:2 (-1) Fun.id);
       false
     with Invalid_argument _ -> true);
  checkb "jobs<1 rejected" true
    (try
       ignore (M.Parallel.init ~jobs:0 10 Fun.id);
       false
     with Invalid_argument _ -> true)

let test_map_matches_array_map () =
  let a = Array.init 137 (fun i -> i * 3) in
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "map jobs=%d" jobs)
        true
        (M.Parallel.map ~jobs (fun x -> x + 1) a = Array.map (fun x -> x + 1) a))
    job_counts

let test_deterministic_exception () =
  (* f raises at indices 10 and 60; with 4 chunks of 25 both failures are
     in different chunks, and the lowest-indexed chunk's exception must win
     regardless of which domain finishes first *)
  let f i = if i = 10 || i = 60 then failwith (string_of_int i) else i in
  for _ = 1 to 10 do
    match M.Parallel.init ~jobs:4 100 f with
    | _ -> Alcotest.fail "must raise"
    | exception Failure msg -> checks "lowest failing chunk wins" "10" msg
  done

(* ------------------------------------------------------------------ *)
(* Campaign-level determinism: jobs=1 vs jobs=N bit-identical *)

let runs = 150
let frames = 4

let campaign_input () =
  let det = T.Experiment.create ~frames ~config:P.Config.deterministic ~base_seed:77L () in
  let rand =
    T.Experiment.create ~frames ~config:P.Config.mbpta_compliant ~base_seed:77L ()
  in
  {
    (M.Campaign.default_input
       ~measure_det:(fun i -> T.Experiment.measure det ~run_index:i)
       ~measure_rand:(fun i -> T.Experiment.measure rand ~run_index:i))
    with
    M.Campaign.runs;
    M.Campaign.options =
      {
        M.Protocol.default_options with
        M.Protocol.check_convergence = false;
        M.Protocol.gate_on_iid = false;
      };
  }

let campaign_exn ~jobs input =
  match M.Campaign.run ~jobs input with
  | Ok c -> c
  | Error f -> Alcotest.failf "campaign (jobs=%d) failed: %a" jobs M.Protocol.pp_failure f

let test_campaign_bit_identical () =
  let input = campaign_input () in
  let reference = campaign_exn ~jobs:1 input in
  List.iter
    (fun jobs ->
      let c = campaign_exn ~jobs input in
      checkb
        (Printf.sprintf "det_sample jobs=%d" jobs)
        true
        (c.M.Campaign.det_sample = reference.M.Campaign.det_sample);
      checkb
        (Printf.sprintf "rand_sample jobs=%d" jobs)
        true
        (c.M.Campaign.rand_sample = reference.M.Campaign.rand_sample);
      (* the whole rendered report — analysis verdicts, pWCET table,
         comparison — must be character-identical *)
      checks
        (Printf.sprintf "render jobs=%d" jobs)
        (M.Campaign.render reference) (M.Campaign.render c))
    [ 2; 4; 8 ]

let test_campaign_analysis_identical () =
  let input = campaign_input () in
  let a1 = campaign_exn ~jobs:1 input in
  let a4 = campaign_exn ~jobs:4 input in
  match (a1.M.Campaign.analysis, a4.M.Campaign.analysis) with
  | Ok r1, Ok r4 ->
      checkb "samples equal" true (r1.M.Protocol.sample = r4.M.Protocol.sample);
      List.iter2
        (fun (p1, v1) (p4, v4) ->
          checkb "cutoff equal" true (p1 = p4);
          checkb "pWCET estimate bit-identical" true (v1 = v4))
        (M.Protocol.pwcet_table r1) (M.Protocol.pwcet_table r4)
  | (Error f, _ | _, Error f) ->
      Alcotest.failf "analysis failed: %a" M.Protocol.pp_failure f

(* ------------------------------------------------------------------ *)
(* Resilient campaign under SEU injection: same property *)

let outcome_of = function
  | T.Experiment.Completed { metrics; _ } ->
      R.Completed (float_of_int (P.Metrics.cycles metrics))
  | T.Experiment.Watchdog _ -> R.Timeout { detail = "watchdog" }
  | T.Experiment.Runaway _ -> R.Timeout { detail = "runaway" }
  | T.Experiment.Crashed { detail; _ } -> R.Crashed { detail }
  | T.Experiment.Corrupted { worst_error; _ } ->
      R.Corrupted { detail = Printf.sprintf "error %g" worst_error }

let test_resilient_campaign_bit_identical () =
  let det = T.Experiment.create ~frames ~config:P.Config.deterministic ~base_seed:77L () in
  let rand =
    T.Experiment.create ~frames ~config:P.Config.mbpta_compliant ~base_seed:77L ()
  in
  let fault = T.Experiment.fault_config ~seu_rate:40. ~watchdog_budget:2_000_000 () in
  let measure exp ~run_index ~attempt =
    outcome_of (T.Experiment.run_faulty exp ~fault ~attempt ~run_index ())
  in
  let policy = { R.default_policy with R.max_retries = 3; R.min_survival = 0.5 } in
  let input =
    M.Campaign.resilient_input ~policy ~base:(campaign_input ())
      ~measure_det_outcome:(measure det) ~measure_rand_outcome:(measure rand) ()
  in
  let run ~jobs =
    match M.Campaign.run_resilient ~jobs input with
    | Ok c -> c
    | Error f ->
        Alcotest.failf "resilient campaign (jobs=%d) failed: %a" jobs
          M.Protocol.pp_failure f
  in
  let reference = run ~jobs:1 in
  let parallel = run ~jobs:4 in
  checkb "rand_sample identical under SEU" true
    (parallel.M.Campaign.rand_sample = reference.M.Campaign.rand_sample);
  checkb "det_sample identical under SEU" true
    (parallel.M.Campaign.det_sample = reference.M.Campaign.det_sample);
  (* resilience reports are plain data: full structural equality, covering
     survivors, retry counts and the per-run audit trail *)
  checkb "rand resilience report identical" true
    (parallel.M.Campaign.rand_resilience = reference.M.Campaign.rand_resilience);
  checkb "det resilience report identical" true
    (parallel.M.Campaign.det_resilience = reference.M.Campaign.det_resilience);
  checks "render identical" (M.Campaign.render reference) (M.Campaign.render parallel)

(* ------------------------------------------------------------------ *)
(* Supervisor determinism on a synthetic pure outcome function *)

(* Pure in (run_index, attempt) by construction — the contract the
   parallel supervisor requires. *)
let synthetic_outcome ~run_index ~attempt =
  let h = (run_index * 1103515245) + (attempt * 12345) in
  let h = h land 0xFF in
  if h < 24 && attempt = 0 then R.Timeout { detail = "transient" }
  else if h < 6 then R.Crashed { detail = "hard" }
  else R.Completed (float_of_int (1000 + h))

let test_supervise_identical_across_jobs () =
  let policy = { R.default_policy with R.max_retries = 2; R.min_survival = 0.5 } in
  let supervise jobs =
    match R.supervise ~jobs ~policy ~runs:200 ~measure:synthetic_outcome () with
    | Ok r -> r
    | Error e -> Alcotest.failf "supervise (jobs=%d) failed: %a" jobs R.pp_error e
  in
  let reference = supervise 1 in
  checkb "some runs retried (test is non-trivial)" true (reference.R.retried_runs > 0);
  List.iter
    (fun jobs ->
      let r = supervise jobs in
      checkb (Printf.sprintf "report identical jobs=%d" jobs) true (r = reference))
    [ 3; 8 ]

let test_budget_exhaustion_identical_across_jobs () =
  (* every attempt times out; the campaign-wide budget is replayed in run
     order, so the error fields must not depend on the job count *)
  let measure ~run_index:_ ~attempt:_ = R.Timeout { detail = "dead" } in
  let policy =
    { R.max_retries = 5; R.max_total_retries = Some 7; R.min_survival = 0.1 }
  in
  let supervise jobs = R.supervise ~jobs ~policy ~runs:10 ~measure () in
  match (supervise 1, supervise 5) with
  | ( Error
        (R.Retry_budget_exhausted
           { spent = s1; limit = l1; runs_completed = r1 }),
      Error
        (R.Retry_budget_exhausted
           { spent = s5; limit = l5; runs_completed = r5 }) ) ->
      checki "spent" s1 s5;
      checki "limit" l1 l5;
      checki "runs_completed" r1 r5
  | _ -> Alcotest.fail "both job counts must exhaust the budget identically"

(* ------------------------------------------------------------------ *)
(* Schedule-randomization and fixed-input campaigns: the [mbpta shuffle]
   and [mbpta leak] measurement kernels must also be bit-identical at any
   job count — their randomness comes only from per-run derived seeds. *)

let test_shuffle_campaign_bit_identical () =
  let e = T.Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:99L () in
  List.iter
    (fun policy ->
      let collect jobs =
        M.Parallel.init ~jobs 12 (fun i ->
            T.Experiment.run_schedule e ~policy ~period:60_000 ~max_jitter:2_000
              ~horizon:120_000 ~run_index:i ())
      in
      let reference = collect 1 in
      checkb (T.Rtos.policy_name policy ^ " jobs=4 = jobs=1") true (collect 4 = reference);
      (* pure in [(base_seed, run_index)]: a second pass reproduces it *)
      checkb (T.Rtos.policy_name policy ^ " repeatable") true (collect 1 = reference))
    T.Rtos.all_policies

let test_fixed_scenario_bit_identical () =
  let e = T.Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:99L () in
  let collect jobs =
    M.Parallel.init ~jobs 24 (fun i ->
        T.Experiment.measure_fixed_scenario e ~scenario_index:0 ~run_index:i)
  in
  let reference = collect 1 in
  checkb "fixed-input sample jobs=4 = jobs=1" true (collect 4 = reference);
  (* the input is pinned, but platform randomization still varies per run *)
  checkb "platform noise varies across runs" true
    (Array.exists (fun v -> v <> reference.(0)) reference)

let () =
  Alcotest.run "repro_parallel"
    [
      ( "sharding",
        [
          test_chunks_properties;
          Alcotest.test_case "explicit chunk shapes" `Quick test_chunks_explicit;
        ] );
      ( "init",
        [
          test_init_matches_sequential;
          Alcotest.test_case "jobs=1 is ascending" `Quick test_init_sequential_is_ascending;
          Alcotest.test_case "edge cases" `Quick test_init_edge_cases;
          Alcotest.test_case "map" `Quick test_map_matches_array_map;
          Alcotest.test_case "deterministic exception" `Quick test_deterministic_exception;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bit-identical at any job count" `Slow
            test_campaign_bit_identical;
          Alcotest.test_case "analysis identical jobs=1 vs 4" `Slow
            test_campaign_analysis_identical;
          Alcotest.test_case "resilient + SEU identical jobs=1 vs 4" `Slow
            test_resilient_campaign_bit_identical;
          Alcotest.test_case "shuffle campaign identical jobs=1 vs 4" `Slow
            test_shuffle_campaign_bit_identical;
          Alcotest.test_case "fixed-input sample identical jobs=1 vs 4" `Slow
            test_fixed_scenario_bit_identical;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "report identical across jobs" `Quick
            test_supervise_identical_across_jobs;
          Alcotest.test_case "budget exhaustion identical" `Quick
            test_budget_exhaustion_identical_across_jobs;
        ] );
    ]
