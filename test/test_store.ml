(* Content-addressed sample store: key stability, bit-exact round-trips,
   crash-injection resume, corruption detection, and gc policy.

   Every measurement function below is a pure function of its run index
   (or of [(run_index, attempt)]) — the seed-derivation contract that makes
   resume-equals-cold provable, and that these tests check bit-for-bit. *)

module M = Repro_mbpta
module Store = M.Store

let temp_dir () =
  let f = Filename.temp_file "store_test" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_root f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f (Store.open_root ~dir))

let config = [ ("scenario", "unit-test"); ("seed", "42"); ("frames", "25") ]

let open_exn ?chunk_size ?resume root ~key ~runs ~resilient =
  match Store.open_session ?chunk_size ?resume root ~key ~config ~runs ~resilient with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_session: %s" e

(* Awkward floats: irrationals, subnormals, negative zero — anything that
   would expose a lossy decimal round-trip. *)
let awkward i =
  match i mod 5 with
  | 0 -> Float.pi *. float_of_int (i + 1)
  | 1 -> 1. /. 3. *. (10. ** float_of_int (i mod 17))
  | 2 -> Float.min_float *. float_of_int (i + 1)
  | 3 -> -0.
  | _ -> sin (float_of_int i) *. 1e9

let check_bits name expected actual =
  let b a = Array.to_list (Array.map Int64.bits_of_float a) in
  Alcotest.(check (list int64)) name (b expected) (b actual)

(* ------------------------------------------------------------------ *)
(* keys *)

let test_key_canonical () =
  let k1 = Store.key [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  let k2 = Store.key [ ("c", "3"); ("a", "1"); ("b", "2") ] in
  Alcotest.(check string) "order-independent" k1 k2;
  let k3 = Store.key [ ("a", "1"); ("b", "2"); ("c", "4") ] in
  Alcotest.(check bool) "value changes the key" false (k1 = k3);
  let k4 = Store.key ~chunk_size:64 [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  Alcotest.(check bool) "chunk size changes the key" false (k1 = k4)

let test_key_is_hex_digest () =
  let k = Store.key config in
  Alcotest.(check int) "MD5 hex length" 32 (String.length k);
  String.iter
    (fun c ->
      if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
        Alcotest.failf "non-hex digest character %C" c)
    k

(* ------------------------------------------------------------------ *)
(* round trip *)

let test_roundtrip_bit_exact () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let cold = open_exn ~chunk_size:8 root ~key ~runs:30 ~resilient:false in
  let expected = Store.collect cold ~phase:"collect_det" 30 awkward in
  Store.close cold;
  let warm = open_exn ~chunk_size:8 root ~key ~runs:30 ~resilient:false in
  Alcotest.(check bool) "phase complete" true (Store.complete warm ~phase:"collect_det");
  Alcotest.(check int) "all runs cached" 30 (Store.cached_runs warm ~phase:"collect_det");
  let calls = ref 0 in
  let served =
    Store.collect warm ~jobs:1 ~phase:"collect_det" 30 (fun i -> incr calls; awkward i)
  in
  Store.close warm;
  Alcotest.(check int) "warm hit computes nothing" 0 !calls;
  check_bits "values bit-identical after reload" expected served

let test_trails_roundtrip () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:4 config in
  let trail i : Store.trail =
    match i mod 4 with
    | 0 -> [ Store.Completed (awkward i) ]
    | 1 -> [ Store.Timeout "watchdog"; Store.Completed (awkward i) ]
    | 2 -> [ Store.Crashed "trap"; Store.Corrupted "checksum"; Store.Completed (-0.) ]
    | _ -> [ Store.Timeout "t0"; Store.Timeout "t1"; Store.Crashed "gave up" ]
  in
  let cold = open_exn ~chunk_size:4 root ~key ~runs:13 ~resilient:true in
  let expected = Store.collect_trails cold ~phase:"collect_rand" 13 trail in
  Store.close cold;
  let warm = open_exn ~chunk_size:4 root ~key ~runs:13 ~resilient:true in
  let calls = ref 0 in
  let served =
    Store.collect_trails warm ~jobs:1 ~phase:"collect_rand" 13 (fun i ->
        incr calls;
        trail i)
  in
  Store.close warm;
  Alcotest.(check int) "warm hit computes nothing" 0 !calls;
  Alcotest.(check bool) "trails round-trip exactly" true (expected = served)

(* ------------------------------------------------------------------ *)
(* session guards *)

let test_session_guards () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:20 ~resilient:false in
  let reject name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  reject "persist off the frontier" (fun () ->
      Store.persist s ~phase:"collect_det" ~lo:8 (Array.make 8 1.));
  reject "persist with a wrong-length chunk" (fun () ->
      Store.persist s ~phase:"collect_det" ~lo:0 (Array.make 5 1.));
  reject "trails persist into a fault-free record" (fun () ->
      Store.persist_trails s ~phase:"collect_det" ~lo:0
        (Array.make 8 [ Store.Completed 1. ]));
  reject "collect with a runs mismatch" (fun () ->
      ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 21 float_of_int));
  Store.close s;
  (* Same key on disk, different declared runs: meta mismatch is an
     [Error], never silent reuse. *)
  match Store.open_session ~chunk_size:8 root ~key ~config ~runs:40 ~resilient:false with
  | Ok _ -> Alcotest.fail "runs mismatch must not open"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* crash injection and resume *)

let session_phase = "collect_det"

let interrupt session ~runs ~after f =
  Store.set_fail_after session after;
  match Store.collect session ~jobs:1 ~phase:session_phase runs f with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> Store.close session

let test_resume_equals_cold () =
  with_root @@ fun root ->
  let runs = 30 in
  let reference = Array.init runs awkward in
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs ~resilient:false in
  interrupt s ~runs ~after:2 awkward;
  (* Resume at a different job count: layout is a function of [runs] alone,
     so the cached/computed split must be invisible in the result. *)
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs ~resilient:false in
  Alcotest.(check int) "two chunks survived the crash" 16
    (Store.cached_runs r ~phase:session_phase);
  let resumed = Store.collect r ~jobs:4 ~phase:session_phase runs awkward in
  Store.close r;
  check_bits "resumed run is bit-identical to cold" reference resumed;
  (* And the record is now complete: a third open is a pure warm hit. *)
  let w = open_exn ~chunk_size:8 root ~key ~runs ~resilient:false in
  let calls = ref 0 in
  let warm = Store.collect w ~jobs:1 ~phase:session_phase runs (fun i -> incr calls; awkward i) in
  Store.close w;
  Alcotest.(check int) "no recompute after resume completed" 0 !calls;
  check_bits "warm serve is bit-identical to cold" reference warm

let test_no_resume_discards_partial () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:30 ~resilient:false in
  interrupt s ~runs:30 ~after:2 awkward;
  let fresh = open_exn ~chunk_size:8 root ~key ~runs:30 ~resilient:false in
  Alcotest.(check int) "partial prefix discarded without --resume" 0
    (Store.cached_runs fresh ~phase:session_phase);
  Store.close fresh

(* ------------------------------------------------------------------ *)
(* whole campaigns through the store *)

let measure_det i = (float_of_int i *. 17.25) +. sin (float_of_int i) +. 1500.
let measure_rand i = (float_of_int i *. 13.5) +. cos (float_of_int (i * 3)) +. 1500.

let campaign_input runs =
  { (M.Campaign.default_input ~measure_det ~measure_rand) with runs }

let campaign_samples = function
  | Ok (c : M.Campaign.t) -> (c.det_sample, c.rand_sample)
  | Error f -> Alcotest.failf "campaign failed: %a" M.Protocol.pp_failure f

let test_campaign_resume_jobs_invariant () =
  with_root @@ fun root ->
  let runs = 40 in
  let input = campaign_input runs in
  let det_cold, rand_cold = campaign_samples (M.Campaign.run ~jobs:1 input) in
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs ~resilient:false in
  Store.set_fail_after s 3;
  (match M.Campaign.run ~jobs:1 ~store:s input with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> Store.close s);
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs ~resilient:false in
  let det_res, rand_res = campaign_samples (M.Campaign.run ~jobs:4 ~store:r input) in
  Store.close r;
  check_bits "det sample: resumed(jobs=4) = cold(jobs=1)" det_cold det_res;
  check_bits "rand sample: resumed(jobs=4) = cold(jobs=1)" rand_cold rand_res;
  (* Warm re-analysis: both phases served from cache, zero simulator runs. *)
  let det_calls = ref 0 and rand_calls = ref 0 in
  let counting =
    {
      input with
      measure_det = (fun i -> incr det_calls; measure_det i);
      measure_rand = (fun i -> incr rand_calls; measure_rand i);
    }
  in
  let w = open_exn ~chunk_size:8 root ~key ~runs ~resilient:false in
  let det_warm, rand_warm = campaign_samples (M.Campaign.run ~jobs:1 ~store:w counting) in
  Store.close w;
  Alcotest.(check int) "warm: zero det measurements" 0 !det_calls;
  Alcotest.(check int) "warm: zero rand measurements" 0 !rand_calls;
  check_bits "warm det sample bit-identical" det_cold det_warm;
  check_bits "warm rand sample bit-identical" rand_cold rand_warm

let outcome_of ~base ~run_index ~attempt : M.Resilience.outcome =
  (* Deterministic fault pattern in (run_index, attempt): some runs time
     out or trap on their first attempts, then recover. *)
  match ((run_index * 7) + attempt) mod 11 with
  | 0 when attempt < 2 -> Timeout { detail = Printf.sprintf "wd run=%d a=%d" run_index attempt }
  | 5 when attempt < 1 -> Crashed { detail = Printf.sprintf "trap run=%d" run_index }
  | _ ->
      Completed (base +. (float_of_int run_index *. 11.5) +. (float_of_int attempt *. 0.125))

let test_resilient_campaign_resume () =
  with_root @@ fun root ->
  let runs = 40 in
  let input =
    M.Campaign.resilient_input ~base:(campaign_input runs)
      ~measure_det_outcome:(outcome_of ~base:1600.)
      ~measure_rand_outcome:(outcome_of ~base:1900.) ()
  in
  let cold = M.Campaign.run_resilient ~jobs:1 input in
  let det_cold, rand_cold = campaign_samples cold in
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs ~resilient:true in
  Store.set_fail_after s 3;
  (match M.Campaign.run_resilient ~jobs:1 ~store:s input with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> Store.close s);
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs ~resilient:true in
  let resumed = M.Campaign.run_resilient ~jobs:4 ~store:r input in
  Store.close r;
  let det_res, rand_res = campaign_samples resumed in
  check_bits "resilient det sample: resumed = cold" det_cold det_res;
  check_bits "resilient rand sample: resumed = cold" rand_cold rand_res;
  (* Retry accounting is checkpointed with the trails, so the fault reports
     reproduce exactly too. *)
  match (cold, resumed) with
  | Ok c, Ok r ->
      Alcotest.(check bool) "det resilience report identical" true
        (c.det_resilience = r.det_resilience);
      Alcotest.(check bool) "rand resilience report identical" true
        (c.rand_resilience = r.rand_resilience)
  | _ -> Alcotest.fail "campaigns must succeed"

(* ------------------------------------------------------------------ *)
(* inspection and gc *)

let append_line file line =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  output_string oc line;
  output_char oc '\n';
  close_out oc

let record_file root key = Filename.concat (Store.dir root) (key ^ ".jsonl")

let test_ls_statuses_and_gc () =
  with_root @@ fun root ->
  (* complete record *)
  let key_ok = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key:key_ok ~runs:16 ~resilient:false in
  ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 16 awkward);
  Store.close s;
  (* partial record: killed after one chunk, then a torn trailing line *)
  let config_p = ("variant", "partial") :: config in
  let key_p = Store.key ~chunk_size:8 config_p in
  let p =
    match
      Store.open_session ~chunk_size:8 root ~key:key_p ~config:config_p ~runs:16
        ~resilient:false
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "open: %s" e
  in
  Store.set_fail_after p 1;
  (match Store.collect p ~jobs:1 ~phase:"collect_det" 16 awkward with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> Store.close p);
  append_line (record_file root key_p) "{\"kind\":\"chunk\",\"phase\":\"collect_det\",\"lo\":8,\"val";
  (* corrupt record: content that cannot possibly match its address *)
  let key_c = String.make 32 'd' in
  append_line (record_file root key_c) "not json at all";
  let entries = Store.ls root in
  Alcotest.(check int) "three records listed" 3 (List.length entries);
  let status_of k =
    (List.find (fun (e : Store.entry) -> e.entry_key = k) entries).status
  in
  (match status_of key_ok with
  | Store.Complete -> ()
  | _ -> Alcotest.fail "finished record must be Complete");
  (match status_of key_p with
  | Store.Partial _ -> ()
  | _ -> Alcotest.fail "torn tail after a valid prefix must stay Partial (resumable)");
  (match status_of key_c with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "unparseable record must be Corrupt");
  (* default gc: corrupt only; partial records are resumable state *)
  let removed, bytes = Store.gc root in
  Alcotest.(check int) "gc removes the corrupt record" 1 (List.length removed);
  Alcotest.(check bool) "gc reports bytes freed" true (bytes > 0);
  Alcotest.(check int) "partial and complete survive" 2 (List.length (Store.ls root));
  let removed, _ = Store.gc ~partial:true root in
  Alcotest.(check int) "gc --partial removes the partial record" 1 (List.length removed);
  match Store.ls root with
  | [ e ] -> Alcotest.(check string) "only the complete record remains" key_ok e.entry_key
  | l -> Alcotest.failf "expected 1 record, found %d" (List.length l)

let test_tail_corruption_keeps_prefix () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:24 ~resilient:false in
  ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 24 awkward);
  Store.close s;
  (* Tear the final chunk line in half — a write that died mid-flush. *)
  let file = record_file root key in
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (match !lines with
  | last :: rest ->
      let oc = open_out file in
      List.iter (fun l -> output_string oc l; output_char oc '\n') (List.rev rest);
      output_string oc (String.sub last 0 (String.length last / 2));
      close_out oc
  | [] -> Alcotest.fail "record is empty");
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs:24 ~resilient:false in
  Alcotest.(check int) "prefix before the bad chunk survives" 16
    (Store.cached_runs r ~phase:"collect_det");
  let calls = ref 0 in
  let out = Store.collect r ~jobs:1 ~phase:"collect_det" 24 (fun i -> incr calls; awkward i) in
  Store.close r;
  Alcotest.(check int) "only the dropped chunk recomputes" 8 !calls;
  check_bits "repaired record is bit-identical" (Array.init 24 awkward) out

(* ------------------------------------------------------------------ *)
(* record integrity (store/v2 checksums) *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Flip one bit inside a chunk value — silent SEU in the store file itself. *)
let flip_byte path ~at =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s at (Char.chr (Char.code (Bytes.get s at) lxor 1));
  write_file path (Bytes.to_string s)

let test_bit_flip_detected () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:24 ~resilient:false in
  ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 24 awkward);
  Store.close s;
  let file = record_file root key in
  (* flip a byte in the middle of the file: lands in a sealed line's body *)
  flip_byte file ~at:(String.length (read_file file) / 2);
  (match
     (List.find (fun (e : Store.entry) -> e.entry_key = key) (Store.ls root)).status
   with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "bit-flipped record must verify as Corrupt");
  (* A tampered record must not resume — and must not silently serve. *)
  (match
     Store.open_session ~chunk_size:8 ~resume:true root ~key ~config ~runs:24
       ~resilient:false
   with
  | Ok _ -> Alcotest.fail "resume over a tampered record must be refused"
  | Error e ->
      Alcotest.(check bool) "error names the integrity check" true
        (String.length e > 0));
  (* Without --resume the record is discarded and recomputed from scratch. *)
  let fresh = open_exn ~chunk_size:8 root ~key ~runs:24 ~resilient:false in
  Alcotest.(check int) "tampered record discarded" 0
    (Store.cached_runs fresh ~phase:"collect_det");
  let out = Store.collect fresh ~jobs:1 ~phase:"collect_det" 24 awkward in
  Store.close fresh;
  check_bits "recomputed record is bit-identical" (Array.init 24 awkward) out

(* Fabricate a legacy-schema record from scratch: v1 (unsealed) and v2
   (sealed) both carried text float payloads ([values]) serialized by
   {!Trace.Json}.  Building the bytes by hand pins the historical line
   shapes independently of what today's writer emits. *)
let fabricate_legacy root ~schema ~key ~chunk_size ~runs values =
  let module J = M.Trace.Json in
  let seal = if schema = "store/v1" then Fun.id else Store.seal in
  let meta =
    J.to_string
      (J.Obj
         [
           ("kind", J.String "meta");
           ("schema", J.String schema);
           ("key", J.String key);
           ("runs", J.Int runs);
           ("resilient", J.Bool false);
           ("chunk_size", J.Int chunk_size);
           ( "config",
             J.Obj
               (List.map (fun (k, v) -> (k, J.String v)) (List.sort compare config)) );
         ])
  in
  let chunks = ref [] in
  let lo = ref 0 in
  while !lo < runs do
    let len = min chunk_size (runs - !lo) in
    chunks :=
      J.to_string
        (J.Obj
           [
             ("kind", J.String "chunk");
             ("phase", J.String "collect_det");
             ("lo", J.Int !lo);
             ("values", J.List (List.init len (fun i -> J.Float (values (!lo + i)))));
           ])
      :: !chunks;
    lo := !lo + len
  done;
  write_file (record_file root key)
    (String.concat "" (List.map (fun l -> seal l ^ "\n") (meta :: List.rev !chunks)))

let test_legacy_read_compat () =
  with_root @@ fun root ->
  let key1 = Store.key_v1 ~chunk_size:8 config in
  let key2 = Store.key_v2 ~chunk_size:8 config in
  fabricate_legacy root ~schema:"store/v1" ~key:key1 ~chunk_size:8 ~runs:16 awkward;
  fabricate_legacy root ~schema:"store/v2" ~key:key2 ~chunk_size:8 ~runs:16 awkward;
  (* Legacy records stay readable: listed, verified, complete — through
     both the deep scan and the header-only listing. *)
  let check_ls ~deep name =
    let entries = Store.ls ~deep root in
    Alcotest.(check int) (name ^ ": two records") 2 (List.length entries);
    List.iter
      (fun (e : Store.entry) ->
        Alcotest.(check int) (name ^ ": runs") 16 e.runs;
        match e.status with
        | Store.Complete -> ()
        | _ -> Alcotest.failf "%s: legacy record %s must verify as Complete" name e.entry_key)
      entries
  in
  check_ls ~deep:true "deep";
  check_ls ~deep:false "shallow";
  (* export ships the legacy bytes verbatim *)
  (match Store.export root ~key:key2 with
  | Error e -> Alcotest.failf "v2 export: %s" e
  | Ok text ->
      Alcotest.(check string) "v2 export verbatim" (read_file (record_file root key2)) text);
  (* ...but sessions write v3 only: a legacy key is refused outright (it is
     not this build's digest of the config), never silently upgraded. *)
  List.iter
    (fun k ->
      match Store.open_session ~chunk_size:8 root ~key:k ~config ~runs:16 ~resilient:false with
      | Ok _ -> Alcotest.fail "a session must not open a legacy record"
      | Error _ -> ())
    [ key1; key2 ];
  (* ...and merge refuses both flavours: skipped, left in place, never
     quarantined or rewritten. *)
  let dst_dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dst_dir) @@ fun () ->
  let dst = Store.open_root ~dir:dst_dir in
  match Store.merge ~src:[ root ] dst with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok m ->
      Alcotest.(check int) "nothing merged" 0 m.Store.records_merged;
      Alcotest.(check int) "both legacy records skipped" 2 (List.length m.Store.skipped);
      Alcotest.(check int) "nothing quarantined" 0 (List.length m.Store.quarantined);
      Alcotest.(check bool) "legacy records left in place" true
        (Sys.file_exists (record_file root key1) && Sys.file_exists (record_file root key2))

let test_foreign_record_detected () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:16 ~resilient:false in
  ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 16 awkward);
  Store.close s;
  (* Valid bytes filed under the wrong address: content/filename mismatch. *)
  let alias = String.make 32 'e' in
  Sys.rename (record_file root key) (record_file root alias);
  match (List.find (fun (e : Store.entry) -> e.entry_key = alias) (Store.ls root)).status with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "mis-addressed record must verify as Corrupt"

(* ------------------------------------------------------------------ *)
(* shard sessions and merge *)

let with_dirs n f =
  let dirs = List.init n (fun _ -> temp_dir ()) in
  Fun.protect ~finally:(fun () -> List.iter rm_rf dirs) (fun () -> f dirs)

let shard_runs = 30
let shard_phases = [ "collect_det"; "collect_rand" ]

(* One shard worker, in-process: collect both phases of [span] into its own
   store directory.  [chunk_size 8] over 30 runs gives chunks at 0/8/16/24. *)
let run_shard_into dir ~key ~span =
  let root = Store.open_root ~dir in
  match
    Store.open_session ~chunk_size:8 ~resume:true ~shard:span root ~key ~config
      ~runs:shard_runs ~resilient:false
  with
  | Error e -> Alcotest.failf "shard session: %s" e
  | Ok s ->
      List.iter
        (fun phase -> ignore (Store.collect s ~jobs:1 ~phase shard_runs awkward))
        shard_phases;
      Store.close s;
      root

let reference_record dir ~key =
  let root = Store.open_root ~dir in
  let s = open_exn ~chunk_size:8 root ~key ~runs:shard_runs ~resilient:false in
  List.iter
    (fun phase -> ignore (Store.collect s ~jobs:1 ~phase shard_runs awkward))
    shard_phases;
  Store.close s;
  root

let spans_3 = M.Coordinator.shard_spans ~shards:3 ~chunk_size:8 ~runs:shard_runs

let test_shard_merge_bit_identical () =
  with_dirs 5 @@ fun dirs ->
  let ref_dir, dst_dir, shard_dirs =
    match dirs with
    | r :: d :: s -> (r, d, s)
    | _ -> assert false
  in
  let key = Store.key ~chunk_size:8 config in
  ignore (reference_record ref_dir ~key);
  Alcotest.(check int) "three spans" 3 (List.length spans_3);
  let srcs = List.map2 (fun dir span -> run_shard_into dir ~key ~span) shard_dirs spans_3 in
  let dst = Store.open_root ~dir:dst_dir in
  (match Store.merge ~src:srcs dst with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok m ->
      Alcotest.(check int) "one record merged" 1 m.Store.records_merged;
      Alcotest.(check (list (pair string int))) "full coverage"
        [ (key, shard_runs) ] m.Store.coverage;
      Alcotest.(check int) "nothing quarantined" 0 (List.length m.Store.quarantined));
  Alcotest.(check string) "merged record byte-identical to single-process"
    (read_file (Filename.concat ref_dir (key ^ ".jsonl")))
    (read_file (Filename.concat dst_dir (key ^ ".jsonl")));
  (* Merging again is a no-op: same bytes, no rewrite. *)
  match Store.merge ~src:srcs dst with
  | Error e -> Alcotest.failf "re-merge: %s" e
  | Ok m -> Alcotest.(check int) "idempotent re-merge" 0 m.Store.records_merged

let test_shard_worker_crash_resume () =
  with_dirs 2 @@ fun dirs ->
  let ref_dir, shard_dir = (List.nth dirs 0, List.nth dirs 1) in
  let key = Store.key ~chunk_size:8 config in
  ignore (reference_record ref_dir ~key);
  let span = List.hd spans_3 (* [0, 16): two chunks per phase *) in
  let root = Store.open_root ~dir:shard_dir in
  let s =
    match
      Store.open_session ~chunk_size:8 ~resume:true ~shard:span root ~key ~config
        ~runs:shard_runs ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "shard session: %s" e
  in
  (* the worker dies mid-shard, after one checkpoint chunk *)
  Store.set_fail_after s 1;
  (match Store.collect s ~jobs:1 ~phase:"collect_det" shard_runs awkward with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> Store.close s);
  (* the retry resumes from the checkpoint and completes the span *)
  let r = ignore root; run_shard_into shard_dir ~key ~span in
  ignore r;
  let entry = List.hd (Store.ls (Store.open_root ~dir:shard_dir)) in
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (phase ^ " covers the span")
        16
        (List.assoc phase entry.Store.phases))
    shard_phases

let test_merge_quarantines_and_degrades () =
  with_dirs 5 @@ fun dirs ->
  let ref_dir, dst_dir, shard_dirs =
    match dirs with r :: d :: s -> (r, d, s) | _ -> assert false
  in
  let key = Store.key ~chunk_size:8 config in
  ignore (reference_record ref_dir ~key);
  let srcs = List.map2 (fun dir span -> run_shard_into dir ~key ~span) shard_dirs spans_3 in
  (* Corrupt the middle shard's record: one flipped byte, mid-file. *)
  let victim = Filename.concat (List.nth shard_dirs 1) (key ^ ".jsonl") in
  flip_byte victim ~at:(String.length (read_file victim) / 2);
  let dst = Store.open_root ~dir:dst_dir in
  (match Store.merge ~src:srcs dst with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok m ->
      Alcotest.(check int) "corrupt shard quarantined" 1 (List.length m.Store.quarantined);
      (* coverage degrades to the contiguous prefix before the gap *)
      Alcotest.(check (list (pair string int))) "prefix coverage"
        [ (key, 16) ] m.Store.coverage);
  Alcotest.(check bool) "quarantined file renamed, not merged" true
    (Sys.file_exists (victim ^ ".quarantined") && not (Sys.file_exists victim));
  (* The merged record resumes to the full campaign bit-identically: graceful
     degradation costs coverage, never correctness. *)
  let r =
    match
      Store.open_session ~chunk_size:8 ~resume:true dst ~key ~config ~runs:shard_runs
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "resume over merged record: %s" e
  in
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (phase ^ ": prefix cached")
        16
        (Store.cached_runs r ~phase);
      check_bits
        (phase ^ ": resumed sample bit-identical")
        (Array.init shard_runs awkward)
        (Store.collect r ~jobs:4 ~phase shard_runs awkward))
    shard_phases;
  Store.close r;
  (* The repaired record is Complete (chunk append order reflects the resume
     interleaving, but every value is bit-identical): a warm re-open serves
     everything without a single measurement. *)
  (match (List.hd (Store.ls dst)).Store.status with
  | Store.Complete -> ()
  | _ -> Alcotest.fail "repaired record must verify as Complete");
  let w = open_exn ~chunk_size:8 dst ~key ~runs:shard_runs ~resilient:false in
  let calls = ref 0 in
  let warm =
    Store.collect w ~jobs:1 ~phase:"collect_det" shard_runs (fun i ->
        incr calls;
        awkward i)
  in
  Store.close w;
  Alcotest.(check int) "warm serve computes nothing" 0 !calls;
  check_bits "warm values bit-identical" (Array.init shard_runs awkward) warm

let test_merge_crash_safety () =
  with_dirs 5 @@ fun dirs ->
  let ref_dir, dst_dir, shard_dirs =
    match dirs with r :: d :: s -> (r, d, s) | _ -> assert false
  in
  let key = Store.key ~chunk_size:8 config in
  ignore (reference_record ref_dir ~key);
  let srcs = List.map2 (fun dir span -> run_shard_into dir ~key ~span) shard_dirs spans_3 in
  let dst = Store.open_root ~dir:dst_dir in
  (* the coordinator dies mid-merge: tmp+rename means the destination holds
     either nothing or a whole record, never a torn one *)
  (match Store.merge ~fail_after:2 ~src:srcs dst with
  | _ -> Alcotest.fail "expected Injected_crash"
  | exception Store.Injected_crash _ -> ());
  Alcotest.(check bool) "no half-written destination record" false
    (Sys.file_exists (Filename.concat dst_dir (key ^ ".jsonl")));
  (* re-running the merge converges to the single-process bytes *)
  (match Store.merge ~src:srcs dst with
  | Error e -> Alcotest.failf "re-merge: %s" e
  | Ok m -> Alcotest.(check int) "re-merge lands the record" 1 m.Store.records_merged);
  Alcotest.(check string) "recovered merge byte-identical"
    (read_file (Filename.concat ref_dir (key ^ ".jsonl")))
    (read_file (Filename.concat dst_dir (key ^ ".jsonl")))

let test_sync_roundtrip () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s =
    match
      Store.open_session ~chunk_size:8 ~sync:true root ~key ~config ~runs:16
        ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "open ~sync: %s" e
  in
  let out = Store.collect s ~jobs:1 ~phase:"collect_det" 16 awkward in
  Store.close s;
  check_bits "fsync'd record round-trips" (Array.init 16 awkward) out;
  let w = open_exn ~chunk_size:8 root ~key ~runs:16 ~resilient:false in
  Alcotest.(check int) "record complete" 16 (Store.cached_runs w ~phase:"collect_det");
  Store.close w

(* ------------------------------------------------------------------ *)
(* export *)

let test_export_roundtrip () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:16 ~resilient:false in
  ignore (Store.collect s ~jobs:1 ~phase:"collect_det" 16 awkward);
  Store.close s;
  (match Store.export root ~key with
  | Error e -> Alcotest.failf "export: %s" e
  | Ok text ->
      Alcotest.(check string) "export is the verified record verbatim"
        (read_file (record_file root key))
        text);
  (match Store.export root ~key:(String.make 32 '0') with
  | Ok _ -> Alcotest.fail "export of a missing key must fail"
  | Error _ -> ());
  flip_byte (record_file root key) ~at:(String.length (read_file (record_file root key)) / 2);
  match Store.export root ~key with
  | Ok _ -> Alcotest.fail "export must refuse a tampered record"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* writer exclusion *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_writer_lock_in_process () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:30 ~resilient:false in
  (match Store.open_session ~chunk_size:8 root ~key ~config ~runs:30 ~resilient:false with
  | Ok _ -> Alcotest.fail "second writer on one key must not open"
  | Error e ->
      Alcotest.(check bool) "diagnostic names the writer conflict" true
        (contains e "locked"));
  Store.close s;
  (* the lock travels with the session: a new writer opens cleanly now *)
  let s2 = open_exn ~chunk_size:8 ~resume:true root ~key ~runs:30 ~resilient:false in
  Store.close s2

(* Two processes racing on one key: the child takes the session and
   holds it; the parent must get the typed diagnostic, and must regain
   the key without any cleanup step once the child dies — even by
   SIGKILL, which runs no release code at all. *)
let test_writer_lock_two_processes () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let key = Store.key ~chunk_size:8 config in
  let r_ready, w_ready = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* child: report whether the open worked, then hold until killed *)
      Unix.close r_ready;
      let verdict =
        let root = Store.open_root ~dir in
        match Store.open_session ~chunk_size:8 root ~key ~config ~runs:30 ~resilient:false with
        | Ok _ -> "k"
        | Error _ -> "e"
      in
      ignore (Unix.write_substring w_ready verdict 0 1);
      Unix.sleep 60;
      Unix._exit 0
  | child ->
      Unix.close w_ready;
      let b = Bytes.create 1 in
      let n = Unix.read r_ready b 0 1 in
      Unix.close r_ready;
      Alcotest.(check int) "child reported" 1 n;
      Alcotest.(check char) "child holds the session" 'k' (Bytes.get b 0);
      let root = Store.open_root ~dir in
      (match Store.open_session ~chunk_size:8 root ~key ~config ~runs:30 ~resilient:false with
      | Ok _ ->
          Unix.kill child Sys.sigkill;
          ignore (Unix.waitpid [] child);
          Alcotest.fail "two live writers on one key"
      | Error e ->
          Alcotest.(check bool) "diagnostic names the other writer" true
            (contains e "locked by another writer"));
      Unix.kill child Sys.sigkill;
      ignore (Unix.waitpid [] child);
      (match Store.open_session ~chunk_size:8 root ~key ~config ~runs:30 ~resilient:false with
      | Ok s -> Store.close s
      | Error e -> Alcotest.failf "lock must die with its process: %s" e)

(* ------------------------------------------------------------------ *)
(* graceful shutdown (signal -> checkpoint barrier -> resume) *)

(* A real SIGINT mid-campaign: the store must stop at the next chunk
   barrier with a clean prefix, and rerunning with resume must be
   bit-identical to a cold run — the kill is invisible in the result. *)
let test_sigint_checkpoint_resume () =
  with_root @@ fun root ->
  let runs = 30 in
  let reference = Array.init runs awkward in
  let key = Store.key ~chunk_size:8 config in
  M.Shutdown.install ();
  let s = open_exn ~chunk_size:8 root ~key ~runs ~resilient:false in
  let self_kill i =
    if i = 12 then begin
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* the handler only sets a flag, and runs at the next safepoint —
         spin (allocating) until it has *)
      while not (M.Shutdown.requested ()) do
        ignore (Sys.opaque_identity (Array.make 1 0))
      done
    end;
    awkward i
  in
  (match Store.collect s ~jobs:1 ~phase:session_phase runs self_kill with
  | _ -> Alcotest.fail "expected Shutdown.Interrupted"
  | exception M.Shutdown.Interrupted reason ->
      Alcotest.(check string) "interruption names the signal" "SIGINT" reason;
      Store.close s);
  Alcotest.(check int) "SIGINT maps to exit 130" 130
    (M.Shutdown.exit_code (M.Shutdown.Interrupted "SIGINT"));
  Alcotest.(check int) "SIGTERM maps to exit 143" 143
    (M.Shutdown.exit_code (M.Shutdown.Interrupted "SIGTERM"));
  M.Shutdown.reset ();
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs ~resilient:false in
  (* the signal landed in chunk [8,16): that chunk still flushed before
     the barrier raised, so the prefix is exactly two whole chunks *)
  Alcotest.(check int) "clean chunk-aligned prefix" 16
    (Store.cached_runs r ~phase:session_phase);
  let resumed = Store.collect r ~jobs:2 ~phase:session_phase runs awkward in
  Store.close r;
  check_bits "kill-then-resume is bit-identical to cold" reference resumed

(* --- binary float codec ------------------------------------------------- *)

let test_f64_codec () =
  let specials =
    [|
      0.;
      -0.;
      infinity;
      neg_infinity;
      Float.min_float;
      Float.max_float;
      ldexp 1. (-1074);
      -.ldexp 1. (-1074);
      (* quiet NaN, signalling NaN, NaN with a distinctive payload: the
         codec must carry the exact bit pattern, not "a NaN" *)
      Int64.float_of_bits 0x7ff8000000000000L;
      Int64.float_of_bits 0x7ff0000000000001L;
      Int64.float_of_bits 0xfff800000000beefL;
      Float.pi;
      1. /. 3.;
      -1.5e308;
    |]
  in
  (match Store.F64.decode (Store.F64.encode specials) ~n:(Array.length specials) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok got -> check_bits "special values survive bit-exactly" specials got);
  (* empty payload *)
  (match Store.F64.decode (Store.F64.encode [||]) ~n:0 with
  | Error e -> Alcotest.failf "empty decode: %s" e
  | Ok got -> Alcotest.(check int) "empty payload" 0 (Array.length got));
  (* every base64 padding shape *)
  for len = 1 to 9 do
    let a = Array.init len (fun i -> Int64.float_of_bits (Int64.of_int (0x0100 * len + i))) in
    match Store.F64.decode (Store.F64.encode a) ~n:len with
    | Error e -> Alcotest.failf "len %d: %s" len e
    | Ok got -> check_bits (Printf.sprintf "len %d round-trips" len) a got
  done;
  (* declared run count must match the payload length *)
  (match Store.F64.decode (Store.F64.encode [| 1.; 2. |]) ~n:3 with
  | Ok _ -> Alcotest.fail "length mismatch must be rejected"
  | Error _ -> ());
  (* and garbage base64 must be rejected, not decoded to something *)
  match Store.F64.decode "!!!!" ~n:0 with
  | Ok _ -> Alcotest.fail "invalid base64 must be rejected"
  | Error _ -> ()

(* --- index sidecar ------------------------------------------------------ *)

let test_index_sidecar () =
  with_root @@ fun root ->
  let key = Store.key ~chunk_size:8 config in
  let s = open_exn ~chunk_size:8 root ~key ~runs:32 ~resilient:false in
  let expected = Store.collect s ~jobs:2 ~phase:"collect_det" 32 awkward in
  Store.close s;
  let idx = record_file root key ^ ".idx" in
  Alcotest.(check bool) "close writes the sidecar" true (Sys.file_exists idx);
  (* header-only listing agrees with the deep scan *)
  let summary e = (e.Store.entry_key, e.Store.runs, e.Store.status = Store.Complete) in
  Alcotest.(check bool) "shallow ls matches deep ls" true
    (List.map summary (Store.ls ~deep:true root)
    = List.map summary (Store.ls ~deep:false root));
  (* a warm query must be served from the index: the simulator must never run *)
  let w = open_exn ~chunk_size:8 ~resume:true root ~key ~runs:32 ~resilient:false in
  let warm =
    Store.collect w ~jobs:1 ~phase:"collect_det" 32 (fun _ ->
        Alcotest.fail "warm query must not simulate")
  in
  Store.close w;
  check_bits "warm == cold" expected warm;
  (* a stale/corrupt sidecar is ignored and rebuilt, never trusted *)
  let junk = "mbpta-idx/v1 999999 deadbeef\n\"collect_det\" 0 8 1 1\n" in
  write_file idx junk;
  (match Store.ls ~deep:false root with
  | [ e ] ->
      (match e.status with
      | Store.Complete -> ()
      | _ -> Alcotest.fail "stale sidecar must fall back to the deep scan")
  | l -> Alcotest.failf "expected 1 record, found %d" (List.length l));
  Alcotest.(check bool) "stale sidecar rebuilt" true (read_file idx <> junk)

(* --- cost-calibrated dispatch ------------------------------------------- *)

let test_dispatch_identity () =
  (* Every dispatch mode must produce bit-identical samples and, for equal
     stores, byte-identical records. *)
  with_dirs 2 @@ fun dirs ->
  let d_chunk, d_auto = (List.nth dirs 0, List.nth dirs 1) in
  let key = Store.key ~chunk_size:8 config in
  let run dir dispatch jobs =
    let root = Store.open_root ~dir in
    let s = open_exn ~chunk_size:8 root ~key ~runs:32 ~resilient:false in
    let v = Store.collect s ~jobs ~dispatch ~phase:"collect_det" 32 awkward in
    Store.close s;
    v
  in
  let reference = run d_chunk `Chunk 1 in
  let auto = run d_auto `Auto 4 in
  check_bits "`Auto == `Chunk samples" reference auto;
  Alcotest.(check string) "byte-identical records across dispatch modes"
    (read_file (record_file (Store.open_root ~dir:d_chunk) key))
    (read_file (record_file (Store.open_root ~dir:d_auto) key));
  (* batched dispatch against a fresh store, then crash-resume under `Auto *)
  let d_batch = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d_batch) @@ fun () ->
  let root = Store.open_root ~dir:d_batch in
  let s = open_exn ~chunk_size:8 root ~key ~runs:32 ~resilient:false in
  let fail_after_two i =
    if i >= 16 then failwith "injected crash mid-batch" else awkward i
  in
  (* `Batch 2 on 8-run chunks: the first fan-out covers runs [0,16) and
     persists both chunks at its barrier; the second fan-out crashes before
     persisting anything, so exactly one whole batch survives. *)
  (match Store.collect s ~jobs:1 ~dispatch:(`Batch 2) ~phase:"collect_det" 32 fail_after_two with
  | _ -> Alcotest.fail "expected the injected crash"
  | exception Failure _ -> Store.close s);
  let r = open_exn ~chunk_size:8 ~resume:true root ~key ~runs:32 ~resilient:false in
  Alcotest.(check int) "crash loses at most one batch" 16
    (Store.cached_runs r ~phase:"collect_det");
  let resumed = Store.collect r ~jobs:4 ~dispatch:`Auto ~phase:"collect_det" 32 awkward in
  Store.close r;
  check_bits "batched crash + auto resume == cold" reference resumed

let test_batch_of_cost () =
  let pick chunk_ns = Repro_parallel.batch_of_cost ~chunk_ns ~target_ns:50_000_000L in
  Alcotest.(check int) "50ms chunk -> 1" 1 (pick 50_000_000L);
  Alcotest.(check int) "30ms chunk -> 2" 2 (pick 30_000_000L);
  Alcotest.(check int) "10ms chunk -> 8" 8 (pick 10_000_000L);
  Alcotest.(check int) "1ms chunk -> 64" 64 (pick 1_000_000L);
  Alcotest.(check int) "1ns chunk caps at the grid max" 64 (pick 1L);
  Alcotest.(check int) "non-positive cost clamps to 1ns" 64 (pick 0L);
  match Repro_parallel.batch_of_cost ~chunk_ns:1L ~target_ns:0L with
  | _ -> Alcotest.fail "target_ns < 1 must be rejected"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "store"
    [
      ( "key",
        [
          Alcotest.test_case "canonical ordering" `Quick test_key_canonical;
          Alcotest.test_case "hex digest shape" `Quick test_key_is_hex_digest;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "floats bit-exact" `Quick test_roundtrip_bit_exact;
          Alcotest.test_case "attempt trails" `Quick test_trails_roundtrip;
          Alcotest.test_case "f64 binary codec" `Quick test_f64_codec;
        ] );
      ( "guards",
        [ Alcotest.test_case "session guards" `Quick test_session_guards ] );
      ( "locking",
        [
          Alcotest.test_case "in-process writer exclusion" `Quick
            test_writer_lock_in_process;
          Alcotest.test_case "two processes racing on one key" `Quick
            test_writer_lock_two_processes;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "SIGINT checkpoints, resume equals cold" `Quick
            test_sigint_checkpoint_resume;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resume equals cold" `Quick test_resume_equals_cold;
          Alcotest.test_case "no --resume discards partial" `Quick
            test_no_resume_discards_partial;
          Alcotest.test_case "campaign resume, jobs-invariant" `Quick
            test_campaign_resume_jobs_invariant;
          Alcotest.test_case "resilient campaign resume" `Quick
            test_resilient_campaign_resume;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "ls statuses and gc" `Quick test_ls_statuses_and_gc;
          Alcotest.test_case "index sidecar" `Quick test_index_sidecar;
          Alcotest.test_case "tail corruption keeps prefix" `Quick
            test_tail_corruption_keeps_prefix;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "bit flip detected" `Quick test_bit_flip_detected;
          Alcotest.test_case "legacy schema read compatibility" `Quick
            test_legacy_read_compat;
          Alcotest.test_case "foreign record detected" `Quick
            test_foreign_record_detected;
          Alcotest.test_case "fsync'd session round-trips" `Quick test_sync_roundtrip;
        ] );
      ( "merge",
        [
          Alcotest.test_case "shard merge bit-identical" `Quick
            test_shard_merge_bit_identical;
          Alcotest.test_case "shard worker crash + resume" `Quick
            test_shard_worker_crash_resume;
          Alcotest.test_case "quarantine + graceful degradation" `Quick
            test_merge_quarantines_and_degrades;
          Alcotest.test_case "merge crash safety" `Quick test_merge_crash_safety;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "dispatch modes are sample-identical" `Quick
            test_dispatch_identity;
          Alcotest.test_case "cost-to-batch grid rounding" `Quick test_batch_of_cost;
        ] );
      ( "export",
        [ Alcotest.test_case "export round-trip" `Quick test_export_roundtrip ] );
    ]
