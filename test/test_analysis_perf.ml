(* Tests for the parallel/incremental analysis engine: the fanned-out
   bootstrap must be bit-identical at every job count, the incremental
   convergence study must match the retired from-scratch implementation
   (kept here as the oracle) bit for bit, the single-pass ACF must equal
   the per-lag reference, and the comparison counter must stay within the
   O(n log n) budget the retired implementation would blow. *)

module S = Repro_stats
module E = Repro_evt
module M = Repro_mbpta
module P = Repro_platform
module T = Repro_tvca
module Prng = Repro_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let check_raises_invalid msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument _ -> ()

let rand_sample =
  lazy
    (let e = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed:2017L () in
     T.Experiment.collect e ~runs:3000)

let prefix n = Array.sub (Lazy.force rand_sample) 0 n

(* ------------------------------------------------------------------ *)
(* Bootstrap *)

let check_interval_eq msg (a : E.Bootstrap.interval) (b : E.Bootstrap.interval) =
  let checkf what = Alcotest.check (Alcotest.float 0.) (msg ^ ": " ^ what) in
  checkf "lower" a.E.Bootstrap.lower b.E.Bootstrap.lower;
  checkf "point" a.E.Bootstrap.point b.E.Bootstrap.point;
  checkf "upper" a.E.Bootstrap.upper b.E.Bootstrap.upper;
  checki (msg ^ ": replicates") a.E.Bootstrap.replicates b.E.Bootstrap.replicates

let bootstrap_interval ~jobs xs =
  E.Bootstrap.pwcet_interval ~replicates:60 ~jobs ~prng:(Prng.create 4321L) ~sample:xs
    ~cutoff_probability:1e-9 ()

let test_bootstrap_jobs_identical () =
  let xs = prefix 400 in
  let reference = bootstrap_interval ~jobs:1 xs in
  List.iter
    (fun jobs ->
      check_interval_eq
        (Printf.sprintf "jobs=%d vs jobs=1" jobs)
        reference (bootstrap_interval ~jobs xs))
    [ 2; 4 ]

let test_bootstrap_prng_discipline () =
  (* The caller's generator advances by exactly two 32-bit draws, no matter
     how many replicates ran or on how many domains. *)
  let xs = prefix 200 in
  let consumed jobs replicates =
    let prng = Prng.create 99L in
    ignore
      (E.Bootstrap.pwcet_interval ~replicates ~jobs ~prng ~sample:xs
         ~cutoff_probability:1e-9 ());
    Prng.bits32 prng
  in
  let reference = Prng.create 99L in
  ignore (Prng.bits32 reference);
  ignore (Prng.bits32 reference);
  let expected = Prng.bits32 reference in
  checki "jobs=1, 20 replicates" expected (consumed 1 20);
  checki "jobs=4, 60 replicates" expected (consumed 4 60)

let test_percentile_degenerate () =
  check_raises_invalid "empty replicate set" (fun () ->
      E.Bootstrap.percentile [||] 0.5);
  Alcotest.check (Alcotest.float 0.) "singleton returns its element" 42.
    (E.Bootstrap.percentile [| 42. |] 0.025);
  Alcotest.check (Alcotest.float 0.) "singleton ignores p" 42.
    (E.Bootstrap.percentile [| 42. |] 0.975)

let test_bootstrap_nan_poisons () =
  (* A sample carrying a NaN makes replicate fits NaN; the interval must
     report NaN bounds, never a finite band sorted around the NaNs. *)
  let xs = Array.init 100 (fun i -> 1000. +. float_of_int i) in
  xs.(57) <- Float.nan;
  let iv =
    E.Bootstrap.pwcet_interval ~replicates:40 ~prng:(Prng.create 7L) ~sample:xs
      ~cutoff_probability:1e-9 ()
  in
  checkb "lower is NaN" true (Float.is_nan iv.E.Bootstrap.lower);
  checkb "upper is NaN" true (Float.is_nan iv.E.Bootstrap.upper)

(* ------------------------------------------------------------------ *)
(* Convergence: retired from-scratch implementation, verbatim, as the
   bit-identity oracle for the incremental engine. *)

let retired_estimate_at xs probability =
  let block_size = E.Block_maxima.suggest_block_size (Array.length xs) in
  let maxima = E.Block_maxima.extract ~block_size xs in
  let gumbel = E.Gumbel_fit.fit ~method_:E.Gumbel_fit.Pwm maxima in
  let curve = E.Pwcet.create ~model:(E.Pwcet.Gumbel_tail gumbel) ~block_size ~sample:xs in
  E.Pwcet.estimate curve ~cutoff_probability:probability

let retired_study ?(probability = 1e-9) ?(step = 100) ?(tolerance = 0.01)
    ?(stable_steps = 3) ?(min_runs = 100) xs =
  let n = Array.length xs in
  let rec go used previous streak acc =
    if used > n then (false, n, List.rev acc)
    else begin
      let sub = Array.sub xs 0 used in
      let est = retired_estimate_at sub probability in
      let acc = (used, est) :: acc in
      let streak =
        match previous with
        | Some prev when Float.abs (est -. prev) /. Float.abs prev <= tolerance ->
            streak + 1
        | Some _ | None -> 0
      in
      if streak >= stable_steps then (true, used, List.rev acc)
      else go (used + step) (Some est) streak acc
    end
  in
  go min_runs None 0 []

let history_pairs (c : E.Convergence.result) =
  List.map (fun p -> (p.E.Convergence.runs, p.E.Convergence.estimate)) c.E.Convergence.history

let check_against_oracle msg ?probability ?step ?tolerance xs =
  let r_conv, r_used, r_hist = retired_study ?probability ?step ?tolerance xs in
  let c = E.Convergence.study ?probability ?step ?tolerance xs in
  checkb (msg ^ ": converged") r_conv c.E.Convergence.converged;
  checki (msg ^ ": runs_used") r_used c.E.Convergence.runs_used;
  let pairs = history_pairs c in
  checki (msg ^ ": history length") (List.length r_hist) (List.length pairs);
  List.iter2
    (fun (ro, eo) (ri, ei) ->
      checki (msg ^ ": step runs") ro ri;
      Alcotest.check (Alcotest.float 0.) (msg ^ ": step estimate") eo ei)
    r_hist pairs

let test_convergence_oracle_prefixes () =
  (* Several prefix lengths: block size suggestions double at different
     points, so every doubling/extension path of the incremental engine is
     exercised. *)
  List.iter
    (fun n -> check_against_oracle (Printf.sprintf "n=%d" n) (prefix n))
    [ 150; 400; 1000; 3000 ];
  (* Non-default stepping, including a step that overshoots the sample. *)
  check_against_oracle "step=37" ~step:37 (prefix 500);
  check_against_oracle "step=5000 (single estimate)" ~step:5000 (prefix 500);
  check_against_oracle "tolerance=0 (full walk)" ~tolerance:0. (prefix 800)

let test_convergence_oracle_faulted () =
  (* Survivor samples from the SEU-injected runner: realistic, slightly
     irregular data (retries, discarded runs) through the same oracle. *)
  let e = T.Experiment.create ~config:P.Config.mbpta_compliant ~base_seed:77L () in
  let fault = T.Experiment.fault_config ~seu_rate:2.0 () in
  let survivors =
    List.init 300 (fun run_index ->
        match T.Experiment.run_faulty e ~fault ~run_index () with
        | T.Experiment.Completed { metrics; _ } ->
            Some (float_of_int (P.Metrics.cycles metrics))
        | _ -> None)
    |> List.filter_map Fun.id |> Array.of_list
  in
  checkb "enough survivors for a study" true (Array.length survivors >= 100);
  check_against_oracle "SEU survivors" survivors

let test_convergence_comparison_budget () =
  (* The counter the CI regression check pins: a full (never-converging)
     walk over n runs must stay within c * n * log2 n comparisons.  The
     retired implementation re-sorted every prefix, which alone costs
     ~sum_k (k*step) log2 (k*step) — several times this budget. *)
  let n = 3000 in
  let c = E.Convergence.study ~tolerance:0. (prefix n) in
  checkb "walked the whole sample" false c.E.Convergence.converged;
  let budget =
    int_of_float (6. *. float_of_int n *. (Float.log (float_of_int n) /. Float.log 2.))
  in
  checkb
    (Printf.sprintf "comparisons %d within budget %d" c.E.Convergence.comparisons budget)
    true
    (c.E.Convergence.comparisons <= budget);
  checkb "counter is live" true (c.E.Convergence.comparisons > 0)

(* ------------------------------------------------------------------ *)
(* ACF *)

let check_acf_equal msg xs ~max_lag =
  let per_lag = Array.init max_lag (fun i -> S.Autocorrelation.acf xs ~lag:(i + 1)) in
  let single = S.Autocorrelation.acf_up_to xs ~max_lag in
  checki (msg ^ ": length") max_lag (Array.length single);
  Array.iteri
    (fun i r ->
      Alcotest.check (Alcotest.float 0.)
        (Printf.sprintf "%s: lag %d" msg (i + 1))
        per_lag.(i) r)
    single

let test_acf_single_pass () =
  check_acf_equal "RAND sample" (prefix 500) ~max_lag:50;
  check_acf_equal "tie-heavy series"
    (Array.init 200 (fun i -> float_of_int (i mod 7)))
    ~max_lag:20;
  check_acf_equal "short series, max feasible lag"
    (Array.init 8 (fun i -> float_of_int (i * i)))
    ~max_lag:7

let test_acf_degenerate () =
  let constant = Array.make 50 3.25 in
  let rs = S.Autocorrelation.acf_up_to constant ~max_lag:10 in
  Array.iteri
    (fun i r ->
      Alcotest.check (Alcotest.float 0.)
        (Printf.sprintf "constant series lag %d" (i + 1))
        0. r)
    rs;
  checki "max_lag 0 returns empty" 0
    (Array.length (S.Autocorrelation.acf_up_to (prefix 100) ~max_lag:0));
  check_raises_invalid "max_lag >= n" (fun () ->
      S.Autocorrelation.acf_up_to (Array.make 5 1.) ~max_lag:5)

(* ------------------------------------------------------------------ *)
(* Protocol: counters and the bootstrap interval are invariant in jobs. *)

let temp_path () =
  let path = Filename.temp_file "test_analysis_perf" ".jsonl" in
  Sys.remove path;
  path

let test_protocol_jobs_invariant () =
  let xs = prefix 1000 in
  let options =
    {
      M.Protocol.default_options with
      M.Protocol.gate_on_iid = false;
      M.Protocol.check_convergence = false;
      M.Protocol.bootstrap =
        Some { M.Protocol.default_bootstrap_options with M.Protocol.replicates = 40 };
    }
  in
  let run jobs =
    let path = temp_path () in
    let trace = M.Trace.create ~path () in
    let result = M.Protocol.analyze ~options ~jobs ~trace xs in
    let counters = M.Trace.Counters.snapshot (M.Trace.counters trace) in
    M.Trace.close trace;
    (try Sys.remove path with Sys_error _ -> ());
    match result with
    | Ok a -> (a, counters)
    | Error f -> Alcotest.failf "analyze (jobs=%d) failed: %a" jobs M.Protocol.pp_failure f
  in
  let a1, c1 = run 1 in
  let a4, c4 = run 4 in
  (match (a1.M.Protocol.bootstrap, a4.M.Protocol.bootstrap) with
  | Some i1, Some i4 -> check_interval_eq "analyze bootstrap jobs=4 vs jobs=1" i1 i4
  | _ -> Alcotest.fail "expected a bootstrap interval from both analyses");
  checkb "counter snapshots identical across jobs" true (c1 = c4);
  checki "bootstrap replicate counter" 40
    (try List.assoc "analysis.bootstrap_replicates" c1 with Not_found -> -1)

let test_protocol_convergence_counter () =
  let xs = prefix 3000 in
  let options =
    { M.Protocol.default_options with M.Protocol.gate_on_iid = false }
  in
  let path = temp_path () in
  let trace = M.Trace.create ~path () in
  let result = M.Protocol.analyze ~options ~trace xs in
  let counters = M.Trace.Counters.snapshot (M.Trace.counters trace) in
  M.Trace.close trace;
  (try Sys.remove path with Sys_error _ -> ());
  match result with
  | Error f -> Alcotest.failf "analyze failed: %a" M.Protocol.pp_failure f
  | Ok a ->
      let steps =
        match a.M.Protocol.convergence with
        | Some c -> List.length c.E.Convergence.history
        | None -> Alcotest.fail "expected a convergence study"
      in
      checki "analysis.convergence_steps matches the history" steps
        (try List.assoc "analysis.convergence_steps" counters with Not_found -> -1)

let () =
  Alcotest.run "analysis_perf"
    [
      ( "bootstrap",
        [
          Alcotest.test_case "bit-identical across jobs" `Quick
            test_bootstrap_jobs_identical;
          Alcotest.test_case "caller PRNG advances exactly two draws" `Quick
            test_bootstrap_prng_discipline;
          Alcotest.test_case "percentile degenerate cases" `Quick
            test_percentile_degenerate;
          Alcotest.test_case "NaN sample poisons the interval" `Quick
            test_bootstrap_nan_poisons;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "incremental matches retired oracle" `Quick
            test_convergence_oracle_prefixes;
          Alcotest.test_case "oracle equality on SEU survivors" `Quick
            test_convergence_oracle_faulted;
          Alcotest.test_case "comparison budget is O(n log n)" `Quick
            test_convergence_comparison_budget;
        ] );
      ( "acf",
        [
          Alcotest.test_case "single pass equals per-lag reference" `Quick
            test_acf_single_pass;
          Alcotest.test_case "degenerate series" `Quick test_acf_degenerate;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "counters and interval invariant in jobs" `Quick
            test_protocol_jobs_invariant;
          Alcotest.test_case "convergence counter matches history" `Quick
            test_protocol_convergence_counter;
        ] );
    ]
