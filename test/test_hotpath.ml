(* The PR 7 hot path — pre-decoded execution, batched per-(domain,
   experiment) scratches, O(1) seed skipping — against the retired
   implementations it replaced.  The contract everywhere is bit identity:
   not statistically close, the same bits, on every kernel, both platform
   configs, with and without fault injection, and through whole campaigns
   (trace files and store records byte-identical) at any job count. *)

module P = Repro_platform
module T = Repro_tvca
module M = Repro_mbpta
module Isa = Repro_isa
module K = Repro_workloads.Kernels
module Prng = Repro_rng.Prng

let checkb what = Alcotest.(check bool) what
let checks what = Alcotest.(check string) what

let pp_metrics (m : P.Metrics.t) =
  Printf.sprintf
    "c=%d i=%d il1=%d/%d dl1=%d/%d itlb=%d dtlb=%d bus=%d dram=%d/%d fp=%d tb=%d f=%d"
    m.cycles m.instructions m.il1_hits m.il1_misses m.dl1_hits m.dl1_misses
    m.itlb_misses m.dtlb_misses m.bus_transactions m.dram_row_hits m.dram_row_misses
    m.fp_long_ops m.taken_branches m.faults_injected

(* ------------------------------------------------------------------ *)
(* Core_sim: run_decoded vs run_program on every workload kernel *)

let test_decoded_kernels () =
  List.iter
    (fun (k : K.t) ->
      List.iter
        (fun (pname, config) ->
          let layout = Isa.Layout.sequential k.K.program in
          let retired =
            let memory = Isa.Memory.create k.K.program in
            k.K.load_input memory (Prng.create 99L);
            let core = P.Core_sim.create ~config ~seed:424242L () in
            P.Core_sim.run_program core ~program:k.K.program ~layout ~memory
          in
          let decoded =
            let memory = Isa.Memory.create k.K.program in
            k.K.load_input memory (Prng.create 99L);
            let d = Isa.Executor.Decoded.decode ~program:k.K.program ~layout in
            let runner = Isa.Executor.Decoded.Runner.create ~decoded:d ~memory () in
            let core = P.Core_sim.create ~config ~seed:424242L () in
            let m = P.Core_sim.run_decoded core ~runner in
            checkb
              (Printf.sprintf "%s %s functional check" k.K.name pname)
              true
              (match k.K.check memory with Ok () -> true | Error _ -> false);
            m
          in
          checks
            (Printf.sprintf "%s %s metrics" k.K.name pname)
            (pp_metrics retired) (pp_metrics decoded))
        [ ("DET", P.Config.deterministic); ("RAND", P.Config.mbpta_compliant) ])
    (K.all ())

(* ------------------------------------------------------------------ *)
(* Experiment: batched run/measure vs the retired fresh-everything path *)

let experiments () =
  ( T.Experiment.create ~frames:4 ~config:P.Config.deterministic ~base_seed:2017L (),
    T.Experiment.create ~frames:4 ~config:P.Config.mbpta_compliant ~base_seed:2017L () )

let test_experiment_batched_vs_retired () =
  let det, rand = experiments () in
  List.iter
    (fun (pname, exp) ->
      for i = 0 to 11 do
        checks
          (Printf.sprintf "%s run %d metrics" pname i)
          (pp_metrics (T.Experiment.run_retired exp ~run_index:i))
          (pp_metrics (T.Experiment.run exp ~run_index:i));
        checkb
          (Printf.sprintf "%s measure %d" pname i)
          true
          (T.Experiment.measure exp ~run_index:i
          = T.Experiment.measure_retired exp ~run_index:i)
      done;
      (* Interleaving retired and batched calls must not perturb either:
         the batched scratch replays the full per-run protocol. *)
      let a = T.Experiment.measure exp ~run_index:3 in
      let _ = T.Experiment.measure_retired exp ~run_index:5 in
      let b = T.Experiment.measure exp ~run_index:3 in
      checkb (Printf.sprintf "%s batched is stateless across calls" pname) true (a = b))
    [ ("DET", det); ("RAND", rand) ]

(* ------------------------------------------------------------------ *)
(* Fault injection: batched supervised runner vs the retired stepper *)

let pp_outcome = Format.asprintf "%a" T.Experiment.pp_fault_outcome

let test_faulty_batched_vs_retired () =
  let _, rand = experiments () in
  let fault = T.Experiment.fault_config ~seu_rate:120.0 ~watchdog_budget:2_000_000 () in
  for i = 0 to 7 do
    for attempt = 0 to 1 do
      checks
        (Printf.sprintf "faulty run %d attempt %d" i attempt)
        (pp_outcome (T.Experiment.run_faulty_retired rand ~fault ~attempt ~run_index:i ()))
        (pp_outcome (T.Experiment.run_faulty rand ~fault ~attempt ~run_index:i ()))
    done
  done;
  (* With injection off and no watchdog, the supervised path must be
     bit-identical to the plain batched run. *)
  let off = T.Experiment.fault_config () in
  for i = 0 to 3 do
    match T.Experiment.run_faulty rand ~fault:off ~run_index:i () with
    | T.Experiment.Completed { metrics; faults } ->
        checkb (Printf.sprintf "no-fault run %d has no records" i) true (faults = []);
        checks
          (Printf.sprintf "no-fault run %d equals run" i)
          (pp_metrics (T.Experiment.run rand ~run_index:i))
          (pp_metrics metrics)
    | o -> Alcotest.failf "no-fault run %d not Completed: %s" i (pp_outcome o)
  done

(* ------------------------------------------------------------------ *)
(* Whole campaigns: batched vs retired measurement closures must leave
   byte-identical trace files and store records, at jobs 1 and 4 *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let campaign_runs = 140

let campaign_artifacts ~jobs ~retired =
  let det, rand = experiments () in
  let measure exp i =
    if retired then T.Experiment.measure_retired exp ~run_index:i
    else T.Experiment.measure exp ~run_index:i
  in
  let input =
    {
      (M.Campaign.default_input ~measure_det:(measure det) ~measure_rand:(measure rand))
      with
      M.Campaign.runs = campaign_runs;
      M.Campaign.options =
        {
          M.Protocol.default_options with
          M.Protocol.check_convergence = false;
          M.Protocol.gate_on_iid = false;
        };
    }
  in
  let dir = Filename.temp_file "hotpath_store" "" in
  Sys.remove dir;
  let trace_path = Filename.temp_file "hotpath_trace" ".jsonl" in
  Sys.remove trace_path;
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      try Sys.remove trace_path with Sys_error _ -> ())
  @@ fun () ->
  let config = [ ("test", "hotpath"); ("runs", string_of_int campaign_runs) ] in
  let key = M.Store.key ~chunk_size:32 config in
  let session =
    match
      M.Store.open_session ~chunk_size:32 (M.Store.open_root ~dir) ~key ~config
        ~runs:campaign_runs ~resilient:false
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "open_session: %s" e
  in
  let trace = M.Trace.create ~path:trace_path () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        M.Trace.close trace;
        M.Store.close session)
      (fun () -> M.Campaign.run ~jobs ~trace ~store:session input)
  in
  let samples =
    match result with
    | Ok c -> (c.M.Campaign.det_sample, c.M.Campaign.rand_sample)
    | Error f -> Alcotest.failf "campaign failed: %a" M.Protocol.pp_failure f
  in
  (read_file trace_path, read_file (Filename.concat dir (key ^ ".jsonl")), samples)

let test_campaign_byte_identity () =
  let ref_trace, ref_record, ref_samples = campaign_artifacts ~jobs:1 ~retired:true in
  List.iter
    (fun (what, jobs, retired) ->
      let trace, record, samples = campaign_artifacts ~jobs ~retired in
      checkb (what ^ ": samples") true (samples = ref_samples);
      checks (what ^ ": trace file") ref_trace trace;
      checks (what ^ ": store record") ref_record record)
    [
      ("batched jobs=1", 1, false);
      ("batched jobs=4", 4, false);
      ("retired jobs=4", 4, true);
    ]

(* ------------------------------------------------------------------ *)
(* Instrumentation sanity: the decode cache and batch scratches are
   actually exercised by the above (a healthy hot path reuses both). *)

let test_hotpath_counters () =
  let hits, misses = T.Experiment.decode_cache_stats () in
  checkb "decode cache consulted" true (hits + misses > 0);
  checkb "decode cache hit at least once" true (hits > 0);
  let created, reused = T.Experiment.batch_stats () in
  checkb "scratches created" true (created > 0);
  checkb "runs reused a scratch" true (reused > created)

(* The decode cache is process-global in a long-lived daemon, so it must
   stay bounded: cycling more distinct configs than the cap may never
   grow it past the cap, eviction must be LRU, and the hit/miss counters
   must stay consistent through evictions. *)
let test_decode_cache_bounded () =
  let default_cap = T.Experiment.decode_cache_capacity () in
  Fun.protect ~finally:(fun () -> T.Experiment.set_decode_cache_capacity default_cap)
  @@ fun () ->
  let touch frames =
    let e =
      T.Experiment.create ~frames ~config:P.Config.deterministic ~base_seed:7L ()
    in
    ignore (T.Experiment.measure e ~run_index:0)
  in
  (match T.Experiment.set_decode_cache_capacity 0 with
  | () -> Alcotest.fail "a cap of 0 must be rejected"
  | exception Invalid_argument _ -> ());
  let cap = 4 in
  T.Experiment.set_decode_cache_capacity cap;
  checkb "lowering the cap shrinks immediately" true
    (T.Experiment.decode_cache_size () <= cap);
  (* cycle 3x the cap's worth of distinct configs (frames is part of the
     codegen key): size must never exceed the cap *)
  for frames = 21 to 20 + (3 * cap) do
    touch frames;
    checkb "size stays within the cap" true (T.Experiment.decode_cache_size () <= cap)
  done;
  Alcotest.(check int) "cache is full after the cycle" cap
    (T.Experiment.decode_cache_size ());
  (* LRU order: the newest [cap] configs are resident (hits), the ones
     cycled out first are gone (misses) *)
  let hits_of f =
    let h0, m0 = T.Experiment.decode_cache_stats () in
    touch f;
    let h1, m1 = T.Experiment.decode_cache_stats () in
    Alcotest.(check int) "each lookup is one hit or one miss" 1
      (h1 - h0 + (m1 - m0));
    h1 - h0 = 1
  in
  checkb "most recent config still cached" true (hits_of (20 + (3 * cap)));
  checkb "evicted config misses again" false (hits_of 21);
  (* recaching 21 evicted the then-oldest entry, never the cap *)
  Alcotest.(check int) "re-insertion respects the cap" cap
    (T.Experiment.decode_cache_size ())

let () =
  Alcotest.run "hotpath"
    [
      ( "decoded",
        [
          Alcotest.test_case "kernels DET+RAND: decoded = retired" `Quick
            test_decoded_kernels;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "batched run/measure = retired" `Quick
            test_experiment_batched_vs_retired;
          Alcotest.test_case "faulty batched = retired (SEU>0)" `Quick
            test_faulty_batched_vs_retired;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "trace+store byte identity, jobs 1 and 4" `Quick
            test_campaign_byte_identity;
        ] );
      ( "counters",
        [ Alcotest.test_case "decode cache + batch exercised" `Quick test_hotpath_counters ] );
      ( "lru",
        [
          Alcotest.test_case "decode cache bounded with LRU eviction" `Quick
            test_decode_cache_bounded;
        ] );
    ]
